// iSAX2+: bulk-loaded iSAX index with variable-cardinality splitting.
// Splits operate on summaries only; raw series are materialized into leaf
// files once at the end of bulk loading (the iSAX2+ optimization).
#ifndef HYDRA_INDEX_ISAX2PLUS_H_
#define HYDRA_INDEX_ISAX2PLUS_H_

#include <memory>
#include <vector>

#include "core/distance.h"
#include "core/method.h"
#include "index/isax_tree.h"
#include "io/counted_storage.h"

namespace hydra::index {

/// Options for iSAX2+ (the paper tunes the leaf threshold; 16 segments and
/// cardinality 256 are the paper's defaults).
struct Isax2PlusOptions {
  size_t segments = 16;
  size_t leaf_capacity = 1000;
};

/// Exact whole-matching k-NN via the iSAX2+ index.
class Isax2Plus : public core::SearchMethod {
 public:
  explicit Isax2Plus(Isax2PlusOptions options = {}) : options_(options) {}

  std::string name() const override { return "iSAX2+"; }
  /// The tree is immutable after Build (ApproximateLeaf never creates
  /// nodes at query time), so queries can run concurrently. ng-capable
  /// tree (Table 1), so every approximate mode is supported.
  core::MethodTraits traits() const override {
    return {.concurrent_queries = true,
            .serial_reason = "",
            .supports_ng = true,
            .supports_epsilon = true,
            .supports_delta_epsilon = true,
            .leaf_visit_budget = true,
            .supports_persistence = true,
            .shardable = true,
            .intra_query_parallel = true};
  }
  core::Footprint footprint() const override;
  double MeanTlb(core::SeriesView query) const override;

 protected:
  core::BuildStats DoBuild(const core::Dataset& data) override;
  void DoSave(io::IndexWriter* writer) const override;
  util::Status DoOpen(io::IndexReader* reader,
                      const core::Dataset& data) override;
  core::KnnResult DoSearchKnn(core::SeriesView query,
                              const core::KnnPlan& plan) override;
  core::KnnResult DoSearchKnnNg(core::SeriesView query, size_t k) override;
  core::RangeResult DoSearchRange(core::SeriesView query,
                                  const core::RangePlan& plan) override;

 private:
  /// Scans a leaf's raw series into the heap, honoring the plan's raw
  /// budget (sets stats->budget_exhausted and stops when it fires).
  void VisitLeaf(const IsaxTree::Node& leaf, const core::QueryOrder& order,
                 const core::KnnPlan& plan, core::KnnHeap* heap,
                 core::SearchStats* stats) const;

  Isax2PlusOptions options_;
  const core::Dataset* data_ = nullptr;
  std::vector<uint8_t> full_words_;  // segments symbols per series
  std::unique_ptr<IsaxTree> tree_;
  int64_t leaf_count_ = 0;  // at Build time; the delta leaf-visit rule
};

}  // namespace hydra::index

#endif  // HYDRA_INDEX_ISAX2PLUS_H_
