// DSTree: data-adaptive and dynamic segmentation index (Wang et al. 2013).
// Each node has its own EAPCA segmentation; splits are horizontal (on a
// segment's mean or stddev) or vertical (refine a segment, then split),
// chosen by a quality-of-split heuristic over both bounds.
#ifndef HYDRA_INDEX_DSTREE_H_
#define HYDRA_INDEX_DSTREE_H_

#include <memory>
#include <vector>

#include "core/distance.h"
#include "core/method.h"
#include "io/counted_storage.h"
#include "transform/eapca.h"

namespace hydra::index {

/// Options for DSTree. Segmentations start uniform with `initial_segments`
/// and may refine up to `max_segments` via vertical splits.
struct DsTreeOptions {
  size_t initial_segments = 4;
  size_t max_segments = 32;
  size_t leaf_capacity = 1000;
};

/// Exact whole-matching k-NN via the DSTree.
class DsTree : public core::SearchMethod {
 public:
  explicit DsTree(DsTreeOptions options = {});
  ~DsTree() override;

  std::string name() const override { return "DSTree"; }
  /// The tree is immutable after Build (queries only read nodes and the
  /// dataset), so queries can run concurrently. ng-capable tree (Table 1),
  /// so every approximate mode is supported.
  core::MethodTraits traits() const override {
    return {.concurrent_queries = true,
            .serial_reason = "",
            .supports_ng = true,
            .supports_epsilon = true,
            .supports_delta_epsilon = true,
            .leaf_visit_budget = true,
            .supports_persistence = true,
            .shardable = true,
            .intra_query_parallel = true};
  }
  core::Footprint footprint() const override;
  double MeanTlb(core::SeriesView query) const override;

 protected:
  core::BuildStats DoBuild(const core::Dataset& data) override;
  void DoSave(io::IndexWriter* writer) const override;
  util::Status DoOpen(io::IndexReader* reader,
                      const core::Dataset& data) override;
  core::KnnResult DoSearchKnn(core::SeriesView query,
                              const core::KnnPlan& plan) override;
  core::KnnResult DoSearchKnnNg(core::SeriesView query, size_t k) override;
  core::RangeResult DoSearchRange(core::SeriesView query,
                                  const core::RangePlan& plan) override;

 private:
  struct Node;

  /// Per-series cumulative sums enabling O(1) segment mean/stddev.
  struct Prefix {
    std::vector<double> sum;
    std::vector<double> sum_sq;
  };

  static void SaveNode(const Node& node, io::IndexWriter* writer);
  static std::unique_ptr<Node> LoadNode(io::IndexReader* reader,
                                        size_t series_length,
                                        size_t series_count);

  static Prefix ComputePrefix(core::SeriesView x);
  static transform::SegmentStats StatOf(const Prefix& p, uint32_t begin,
                                        uint32_t end);
  static std::vector<transform::SegmentStats> StatsOn(
      const Prefix& p, const transform::Segmentation& seg);

  void Insert(core::SeriesId id, const Prefix& p);
  void SplitLeaf(Node* leaf);
  /// Scans a leaf's raw series into the heap, honoring the plan's raw
  /// budget (sets stats->budget_exhausted and stops when it fires).
  void VisitLeaf(const Node& leaf, const core::QueryOrder& order,
                 const core::KnnPlan& plan, core::KnnHeap* heap,
                 core::SearchStats* stats) const;

  DsTreeOptions options_;
  const core::Dataset* data_ = nullptr;
  std::unique_ptr<Node> root_;
  int64_t leaf_count_ = 0;  // at Build time; the delta leaf-visit rule
};

}  // namespace hydra::index

#endif  // HYDRA_INDEX_DSTREE_H_
