// M-tree: metric access method over raw series with covering radii and
// triangle-inequality pruning (Ciaccia, Patella & Zezula). Memory-resident,
// like the only implementation that scaled in the paper's study.
#ifndef HYDRA_INDEX_MTREE_H_
#define HYDRA_INDEX_MTREE_H_

#include <memory>
#include <vector>

#include "core/method.h"

namespace hydra::io {
class CountedStorage;
}

namespace hydra::index {

/// Options for the M-tree (the paper's tuned leaf capacity is very small).
struct MTreeOptions {
  size_t leaf_capacity = 32;
  size_t internal_capacity = 16;
  /// Candidate promotions sampled per split (mM_RAD approximation).
  size_t split_samples = 8;
};

/// Exact whole-matching k-NN via the M-tree. Distances are true Euclidean
/// (the metric the triangle inequality needs); results are reported as
/// squared distances like every other method.
class MTree : public core::SearchMethod {
 public:
  explicit MTree(MTreeOptions options = {});
  ~MTree() override;

  std::string name() const override { return "M-tree"; }
  /// The tree is immutable after Build, so queries can run concurrently.
  /// Table 1 marks the M-tree epsilon-approximate; it has no ng one-path
  /// descent and no delta rule.
  core::MethodTraits traits() const override {
    return {.concurrent_queries = true,
            .serial_reason = "",
            .supports_epsilon = true,
            .leaf_visit_budget = true,
            .supports_persistence = true,
            .shardable = true,
            .intra_query_parallel = true};
  }

  /// Legacy entry point (deprecated): epsilon-approximate k-NN
  /// (Definition 5; Table 1 marks the M-tree as supporting it), equivalent
  /// to Execute(query, QuerySpec::Epsilon(k, epsilon)). Every result is
  /// within (1+epsilon) of the true k-th NN distance; epsilon == 0 is the
  /// exact search.
  core::KnnResult SearchKnnEpsApproximate(core::SeriesView query, size_t k,
                                          double epsilon) {
    return Execute(query, core::QuerySpec::Epsilon(k, epsilon));
  }
  core::Footprint footprint() const override;

 protected:
  core::BuildStats DoBuild(const core::Dataset& data) override;
  void DoSave(io::IndexWriter* writer) const override;
  util::Status DoOpen(io::IndexReader* reader,
                      const core::Dataset& data) override;
  /// Subtrees are pruned against bsf/(1+epsilon) — the M-tree works on
  /// unsquared distances, so it reads plan.epsilon rather than the squared
  /// plan.bound_scale — and larger epsilon trades accuracy for fewer
  /// distance computations.
  core::KnnResult DoSearchKnn(core::SeriesView query,
                              const core::KnnPlan& plan) override;
  core::RangeResult DoSearchRange(core::SeriesView query,
                                  const core::RangePlan& plan) override;

 private:
  struct Node;
  struct Route;

  static void SaveNode(const Node& node, io::IndexWriter* writer);
  static std::unique_ptr<Node> LoadNode(io::IndexReader* reader,
                                        size_t series_count);

  double Dist(core::SeriesId a, core::SeriesId b) const;
  double DistToQuery(core::SeriesView query, core::SeriesId id,
                     core::SearchStats* stats) const;
  /// DistToQuery for leaf members, fetched through `raw` so file-backed
  /// datasets serve them from the buffer pool. Routing centers keep the
  /// direct DistToQuery: the M-tree is the paper's memory-resident method,
  /// so only its leaf *verification* reads touch raw storage.
  double DistToQueryRaw(core::SeriesView query, core::SeriesId id,
                        io::CountedStorage* raw,
                        core::SearchStats* stats) const;
  /// Inserts into the subtree; on overflow returns two replacement routes.
  bool Insert(Node* node, core::SeriesId id, double dist_to_node_center,
              std::unique_ptr<Node>* out_left,
              std::unique_ptr<Node>* out_right, Route* left_route,
              Route* right_route);
  void SplitNode(Node* node, std::unique_ptr<Node>* out_left,
                 std::unique_ptr<Node>* out_right, Route* left_route,
                 Route* right_route);

  MTreeOptions options_;
  const core::Dataset* data_ = nullptr;
  std::unique_ptr<Node> root_;
  mutable int64_t build_distance_count_ = 0;
};

}  // namespace hydra::index

#endif  // HYDRA_INDEX_MTREE_H_
