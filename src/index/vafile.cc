#include "index/vafile.h"

#include <algorithm>
#include <cmath>

#include "core/distance.h"
#include "io/counted_storage.h"
#include "io/index_codec.h"
#include "obs/trace.h"
#include "transform/dft.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::index {

core::BuildStats VaFile::DoBuild(const core::Dataset& data) {
  util::WallTimer timer;
  data_ = &data;
  const size_t dims =
      std::min(options_.dims,
               transform::MaxPackedCoeffs(data.length(), /*skip_dc=*/true));

  // One pass: DFT of every series (the paper's DFT-for-KLT substitution).
  std::vector<std::vector<double>> dfts(data.size());
  tail_energy_.resize(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    // Full transform to account for the residual (tail) energy, truncated
    // summary for the approximation file.
    const auto full = transform::PackedRealDft(
        data[i], transform::MaxPackedCoeffs(data.length(), true), true);
    double tail = 0.0;
    for (size_t d = dims; d < full.size(); ++d) tail += full[d] * full[d];
    tail_energy_[i] = tail;
    dfts[i].assign(full.begin(), full.begin() + static_cast<long>(dims));
  }
  quantizer_ = transform::VaPlusQuantizer::Train(
      dfts, options_.total_bits, options_.allocation, options_.placement);
  cells_.resize(data.size() * dims);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto cell = quantizer_.Quantize(dfts[i]);
    std::copy(cell.begin(), cell.end(), cells_.begin() + i * dims);
  }

  core::BuildStats stats;
  stats.cpu_seconds = timer.Seconds();
  stats.bytes_read = static_cast<int64_t>(data.bytes());
  stats.random_reads = 1;
  // Only the approximation file is written.
  stats.bytes_written = static_cast<int64_t>(
      data.size() * (quantizer_.ApproximationBytes() + sizeof(float)));
  stats.random_writes = 1;
  return stats;
}

void VaFile::DoSave(io::IndexWriter* writer) const {
  writer->BeginSection("options");
  writer->WriteU64(options_.dims);
  writer->WriteI32(options_.total_bits);
  writer->WriteU8(static_cast<uint8_t>(options_.allocation));
  writer->WriteU8(static_cast<uint8_t>(options_.placement));
  writer->EndSection();
  writer->BeginSection("quantizer");
  writer->WriteI32(quantizer_.total_bits());
  writer->WriteU64(quantizer_.dims());
  for (size_t d = 0; d < quantizer_.dims(); ++d) {
    writer->WriteI32(quantizer_.bits_for(d));
    const auto edges = quantizer_.EdgesFor(d);
    writer->WritePodVector(
        std::vector<double>(edges.begin(), edges.end()));
  }
  writer->EndSection();
  writer->BeginSection("approximations");
  writer->WritePodVector(cells_);
  writer->WritePodVector(tail_energy_);
  writer->EndSection();
}

util::Status VaFile::DoOpen(io::IndexReader* reader,
                            const core::Dataset& data) {
  reader->EnterSection("options");
  options_.dims = reader->ReadU64();
  options_.total_bits = reader->ReadI32();
  options_.allocation =
      static_cast<transform::VaPlusQuantizer::Allocation>(reader->ReadU8());
  options_.placement =
      static_cast<transform::VaPlusQuantizer::CellPlacement>(
          reader->ReadU8());
  reader->EnterSection("quantizer");
  const int total_bits = reader->ReadI32();
  const uint64_t dims = reader->ReadU64();
  std::vector<int> bits;
  std::vector<std::vector<double>> edges;
  for (uint64_t d = 0; d < dims && reader->ok(); ++d) {
    const int b = reader->ReadI32();
    std::vector<double> e = reader->ReadPodVector<double>();
    if (reader->ok() &&
        (b < 0 || b > transform::VaPlusQuantizer::kMaxBitsPerDim ||
         e.size() != (size_t{1} << b) + 1)) {
      reader->Fail("VA+ quantizer table is malformed");
      break;
    }
    bits.push_back(b);
    edges.push_back(std::move(e));
  }
  if (reader->ok() && total_bits < 1) {
    reader->Fail("VA+ quantizer bit budget is malformed");
  }
  if (!reader->ok()) return reader->status();
  quantizer_ = transform::VaPlusQuantizer::FromTables(std::move(edges),
                                                      std::move(bits),
                                                      total_bits);
  reader->EnterSection("approximations");
  cells_ = reader->ReadPodVector<uint16_t>();
  tail_energy_ = reader->ReadPodVector<double>();
  if (reader->ok() &&
      (cells_.size() != data.size() * quantizer_.dims() ||
       tail_energy_.size() != data.size())) {
    reader->Fail("VA+ approximation file does not cover the dataset");
  }
  if (!reader->ok()) return reader->status();
  data_ = &data;
  return reader->status();
}

core::KnnResult VaFile::DoSearchKnn(core::SeriesView query,
                                    const core::KnnPlan& plan) {
  HYDRA_CHECK(data_ != nullptr);
  util::WallTimer timer;
  core::KnnResult result;
  const size_t count = data_->size();
  const size_t dims = quantizer_.dims();
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  // Per-query raw-file cursor: concurrent queries must not share one.
  io::CountedStorage raw(data_);

  const auto q_full = transform::PackedRealDft(
      query, transform::MaxPackedCoeffs(query.size(), true), true);
  const std::span<const double> q_dft(q_full.data(), dims);
  double q_tail = 0.0;
  for (size_t d = dims; d < q_full.size(); ++d) q_tail += q_full[d] * q_full[d];
  const double q_tail_rt = std::sqrt(q_tail);

  // Phase 1: bounds from the approximation file (memory-resident; the
  // paper reports VA+file performs virtually no sequential disk I/O).
  // The scratch heap serves both phases in turn: phase 1 only needs the
  // k-th best upper bound, which is extracted before the Reset.
  std::vector<double> lb(count);
  core::KnnHeap& heap = core::ScratchKnnHeap(plan.k);
  // Phase 1 offers *upper* bounds — real candidates provably within them —
  // so sharing the cross-shard bound here is sound and lets other shards
  // prune against this shard's k-th upper bound early.
  heap.ShareBound(plan.shared_bound);
  for (size_t i = 0; i < count; ++i) {
    const std::span<const uint16_t> cell(cells_.data() + i * dims, dims);
    lb[i] = quantizer_.CellLowerBoundSq(q_dft, cell);
    // Full-space upper bound: truncated-space bound plus the
    // Cauchy-Schwarz residual term.
    const double rt = q_tail_rt + std::sqrt(tail_energy_[i]);
    const double ub =
        quantizer_.CellUpperBoundSq(q_dft, cell) + rt * rt;
    heap.Offer(static_cast<core::SeriesId>(i), ub);
  }
  result.stats.lower_bound_computations += static_cast<int64_t>(2 * count);
  double bound = heap.Bound();

  // Phase 2: skip-sequential refinement of candidates in file order.
  //
  // The exact path prunes and early-abandons against `bound`, the running
  // min of the phase-1 upper-bound estimate and the heap's k-th actual
  // distance. Abandoned partial distances may then enter a not-yet-full
  // heap, which is sound only because the exact path always refines the
  // true top-k afterwards and evicts them. A plan that can stop early
  // (epsilon shrink or a raw budget) loses that eviction guarantee, so it
  // switches to the tree-style abandon discipline: abandon against
  // heap.Bound() — +inf until the heap holds k, so every resident value
  // is an exact distance, and any abandoned value is rejected by the
  // heap. The epsilon modes additionally prune against heap.Bound() *
  // bound_scale (= bsf/(1+epsilon)^2) once the heap is full, which is
  // what makes every reported distance provably within (1+epsilon) of the
  // truth; until then the exact criterion applies unshrunken, so a large
  // epsilon cannot prune everything and return an empty answer.
  // A budget alone (no epsilon) keeps the exact prune criterion — it must
  // only cap work, never add it — but still needs the exact-values
  // abandon discipline so a truncated answer reports true distances.
  // A shared cross-shard bound breaks the eviction guarantee the same way
  // (another shard's bound may prune this shard's local top-k before the
  // refinement reaches it), so it too forces the exact-values discipline:
  // every abandoned value then exceeds a bound that never drops below the
  // final global k-th distance, and the merge rejects it.
  const bool shrunken = plan.bound_scale != 1.0;
  const bool exact_values = shrunken ||
                            plan.max_raw != core::KnnPlan::kUnlimited ||
                            plan.shared_bound != nullptr;
  heap.Reset(plan.k);
  heap.ShareBound(plan.shared_bound);  // Reset detached the phase-1 bound
  // VA+file's leaf-verification analog: the skip-sequential refinement
  // sweep. Scope-bound to the function; the tail extract is trivial.
  obs::ObsSpan refine_span("leaf_verify", "series",
                           static_cast<int64_t>(count));
  for (size_t i = 0; i < count; ++i) {
    bound = std::min(bound, heap.Bound());
    if (shrunken && heap.size() >= plan.k) {
      if (lb[i] >= heap.Bound() * plan.bound_scale) continue;
    } else {
      if (lb[i] >= bound) continue;
    }
    if (plan.RawCapReached(&result.stats)) break;
    const core::SeriesView s =
        raw.Read(static_cast<core::SeriesId>(i), &result.stats);
    const double d = order.Distance(s, exact_values ? heap.Bound() : bound);
    ++result.stats.distance_computations;
    ++result.stats.raw_series_examined;
    heap.Offer(static_cast<core::SeriesId>(i), d);
  }

  heap.ExtractSortedTo(&result.neighbors);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::RangeResult VaFile::DoSearchRange(core::SeriesView query,
                                        const core::RangePlan& plan) {
  const double radius = plan.radius;
  HYDRA_CHECK(data_ != nullptr);
  util::WallTimer timer;
  core::RangeResult result;
  core::RangeCollector collector(radius * radius);
  const size_t count = data_->size();
  const size_t dims = quantizer_.dims();
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  io::CountedStorage raw(data_);

  const auto q_full = transform::PackedRealDft(
      query, transform::MaxPackedCoeffs(query.size(), true), true);
  const std::span<const double> q_dft(q_full.data(), dims);

  // One pass over the memory-resident approximation file, skip-sequential
  // refinement of the survivors against the raw file.
  obs::ObsSpan refine_span("leaf_verify", "series",
                           static_cast<int64_t>(count));
  for (size_t i = 0; i < count; ++i) {
    const std::span<const uint16_t> cell(cells_.data() + i * dims, dims);
    ++result.stats.lower_bound_computations;
    if (quantizer_.CellLowerBoundSq(q_dft, cell) > collector.Bound()) {
      continue;
    }
    const core::SeriesView s =
        raw.Read(static_cast<core::SeriesId>(i), &result.stats);
    const double d = order.Distance(s, collector.Bound());
    ++result.stats.distance_computations;
    ++result.stats.raw_series_examined;
    collector.Offer(static_cast<core::SeriesId>(i), d);
  }

  result.matches = collector.TakeSorted();
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::Footprint VaFile::footprint() const {
  HYDRA_CHECK(data_ != nullptr);
  core::Footprint fp;
  // No tree: the approximation file is the whole structure.
  fp.memory_bytes = static_cast<int64_t>(
      quantizer_.MemoryBytes() + cells_.size() * sizeof(uint16_t) +
      tail_energy_.size() * sizeof(double));
  fp.disk_bytes = static_cast<int64_t>(
      data_->size() * (quantizer_.ApproximationBytes() + sizeof(float)));
  return fp;
}

double VaFile::MeanTlb(core::SeriesView query) const {
  HYDRA_CHECK(data_ != nullptr);
  // The VA+file has no leaves; each series' cell acts as its region. Use a
  // strided sample to keep TLB evaluation cheap.
  const size_t count = data_->size();
  const size_t dims = quantizer_.dims();
  const auto q_full = transform::PackedRealDft(
      query, transform::MaxPackedCoeffs(query.size(), true), true);
  const std::span<const double> q_dft(q_full.data(), dims);
  const size_t sample = std::min<size_t>(count, 2000);
  double sum = 0.0;
  size_t used = 0;
  for (size_t j = 0; j < sample; ++j) {
    const size_t i = j * count / sample;
    const std::span<const uint16_t> cell(cells_.data() + i * dims, dims);
    const double lb = std::sqrt(quantizer_.CellLowerBoundSq(q_dft, cell));
    const double truth =
        std::sqrt(core::SquaredEuclidean(query, (*data_)[i]));
    if (truth > 0.0) {
      sum += lb / truth;
      ++used;
    }
  }
  return used == 0 ? 0.0 : sum / static_cast<double>(used);
}

}  // namespace hydra::index
