// Descriptive statistics used by the experiment harness and generators.
#ifndef HYDRA_UTIL_STATS_H_
#define HYDRA_UTIL_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace hydra::util {

/// Arithmetic mean of `xs`; 0 for an empty span.
double Mean(std::span<const double> xs);

/// Population standard deviation of `xs`; 0 for fewer than one element.
double Stddev(std::span<const double> xs);

/// The q-quantile (q in [0,1]) of `xs` with linear interpolation.
/// Copies and sorts internally; `xs` is left untouched.
double Quantile(std::span<const double> xs, double q);

/// Five-number summary of a sample.
struct Summary {
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Computes the five-number summary plus mean of `xs`.
Summary Summarize(std::span<const double> xs);

/// Trimmed mean after dropping the `trim` smallest and `trim` largest values
/// (the paper's 10K-query extrapolation drops the best and worst 5 of 100).
double TrimmedMean(std::span<const double> xs, size_t trim);

/// The three tail quantiles every latency report wants (serve STATS, the
/// throughput bench). All 0 for an empty sample.
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes p50/p95/p99 of `xs` with the same interpolation as Quantile.
Percentiles TailPercentiles(std::span<const double> xs);

}  // namespace hydra::util

#endif  // HYDRA_UTIL_STATS_H_
