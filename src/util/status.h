// Minimal Status/Result types for fallible operations (mostly file I/O).
#ifndef HYDRA_UTIL_STATUS_H_
#define HYDRA_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace hydra::util {

/// Outcome of a fallible operation. Default-constructed Status is OK.
class Status {
 public:
  Status() = default;

  /// Creates an error status carrying `message`.
  static Status Error(std::string message) { return Status(std::move(message)); }
  static Status Ok() { return Status(); }

  bool ok() const { return ok_; }
  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  explicit Status(std::string message) : ok_(false), message_(std::move(message)) {}

  bool ok_ = true;
  std::string message_;
};

/// A value or an error. Use `ok()` before `value()`.
template <typename T>
class Result {
 public:
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {      // NOLINT(runtime/explicit)
    HYDRA_CHECK_MSG(!status_.ok(), "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    HYDRA_CHECK_MSG(ok(), "Result::value() on error result");
    return value_;
  }
  T&& value() && {
    HYDRA_CHECK_MSG(ok(), "Result::value() on error result");
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace hydra::util

#endif  // HYDRA_UTIL_STATUS_H_
