// Invariant-checking macros. Hydra follows a no-exceptions discipline on hot
// paths; programmer errors abort with a diagnostic, fallible operations
// return util::Status.
#ifndef HYDRA_UTIL_CHECK_H_
#define HYDRA_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace hydra::util::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace hydra::util::internal

/// Aborts with a diagnostic if `cond` is false. Always evaluated (also in
/// release builds): Hydra invariants guard correctness of search results.
#define HYDRA_CHECK(cond)                                                \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::hydra::util::internal::CheckFailed(#cond, __FILE__, __LINE__, ""); \
    }                                                                    \
  } while (false)

/// HYDRA_CHECK with an explanatory message (plain C string).
#define HYDRA_CHECK_MSG(cond, msg)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::hydra::util::internal::CheckFailed(#cond, __FILE__, __LINE__, msg); \
    }                                                                     \
  } while (false)

/// Debug-only check for hot loops; compiled out in release builds.
#ifndef NDEBUG
#define HYDRA_DCHECK(cond) HYDRA_CHECK(cond)
#else
#define HYDRA_DCHECK(cond) \
  do {                     \
  } while (false)
#endif

#endif  // HYDRA_UTIL_CHECK_H_
