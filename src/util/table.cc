#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace hydra::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  HYDRA_CHECK_MSG(row.size() == header_.size(), "Table row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print(const std::string& title) const {
  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
  std::fputs(ToString().c_str(), stdout);
}

std::string Table::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace hydra::util
