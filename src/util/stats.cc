#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hydra::util {

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double Quantile(std::span<const double> xs, double q) {
  HYDRA_CHECK(!xs.empty());
  HYDRA_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.min = Quantile(xs, 0.0);
  s.q25 = Quantile(xs, 0.25);
  s.median = Quantile(xs, 0.5);
  s.q75 = Quantile(xs, 0.75);
  s.max = Quantile(xs, 1.0);
  s.mean = Mean(xs);
  return s;
}

Percentiles TailPercentiles(std::span<const double> xs) {
  Percentiles p;
  if (xs.empty()) return p;
  p.p50 = Quantile(xs, 0.50);
  p.p95 = Quantile(xs, 0.95);
  p.p99 = Quantile(xs, 0.99);
  return p;
}

double TrimmedMean(std::span<const double> xs, size_t trim) {
  HYDRA_CHECK_MSG(xs.size() > 2 * trim, "TrimmedMean: sample too small");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (size_t i = trim; i < sorted.size() - trim; ++i) sum += sorted[i];
  return sum / static_cast<double>(sorted.size() - 2 * trim);
}

}  // namespace hydra::util
