// Minimal JSON writer for machine-readable bench output (`--json <path>`).
// Deliberately tiny: objects, arrays, and scalar values with correct
// escaping and comma management — enough for flat benchmark records, no
// parsing, no DOM.
#ifndef HYDRA_UTIL_JSON_H_
#define HYDRA_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hydra::util {

/// Streaming JSON serializer. Usage:
///
///     JsonWriter json;
///     json.BeginObject();
///     json.Key("method"); json.String("DSTree");
///     json.Key("runs");   json.BeginArray();
///     json.BeginObject(); ... json.EndObject();
///     json.EndArray();
///     json.EndObject();
///     util::Status s = json.WriteTo(path);
///
/// Structural misuse (a value with no pending key inside an object,
/// unbalanced Begin/End, writing after the root closed) CHECK-aborts:
/// serialization bugs are programmer errors, matching the IndexWriter
/// convention. Non-finite doubles serialize as null (JSON has no NaN).
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Names the next value (only inside an object, exactly one per value).
  void Key(std::string_view name);

  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// The serialized document; valid once the root container is closed.
  const std::string& str() const;

  /// Writes the serialized document (plus a trailing newline) to `path`.
  Status WriteTo(const std::string& path) const;

 private:
  enum class Scope : uint8_t { kObject, kArray };

  /// Emits the comma/key prelude for the next value.
  void BeforeValue();
  void Escaped(std::string_view s);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool key_pending_ = false;
  bool root_done_ = false;
};

}  // namespace hydra::util

#endif  // HYDRA_UTIL_JSON_H_
