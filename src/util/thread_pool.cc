#include "util/thread_pool.h"

#include <atomic>
#include <latch>
#include <utility>

#include "util/check.h"

namespace hydra::util {

ThreadPool::ThreadPool(size_t threads) {
  HYDRA_CHECK_MSG(threads >= 1, "ThreadPool needs at least one worker");
  workers_.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  HYDRA_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HYDRA_CHECK_MSG(!stop_, "Submit after ThreadPool destruction began");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  // One stripe task per worker; each grabs the next unclaimed index until
  // the range is exhausted. Dynamic distribution keeps workers busy when
  // per-index costs vary (hard queries take longer than easy ones).
  const size_t stripes = std::min(size(), end - begin);
  std::atomic<size_t> next{begin};
  std::latch done(static_cast<ptrdiff_t>(stripes));
  for (size_t t = 0; t < stripes; ++t) {
    Submit([&next, &done, &fn, end] {
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < end;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
      done.count_down();
    });
  }
  done.wait();
}

size_t ThreadPool::HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace hydra::util
