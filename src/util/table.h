// ASCII table rendering for bench binaries: every figure/table of the paper
// is regenerated as a plain-text table on stdout.
#ifndef HYDRA_UTIL_TABLE_H_
#define HYDRA_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace hydra::util {

/// Column-aligned ASCII table. Add a header row, then data rows, then Print.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table to a string with a separator under the header.
  std::string ToString() const;

  /// Prints the table (with an optional title) to stdout.
  void Print(const std::string& title = "") const;

  /// Formats a double with `digits` fractional digits.
  static std::string Num(double v, int digits = 2);
  /// Formats an integer count.
  static std::string Int(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hydra::util

#endif  // HYDRA_UTIL_TABLE_H_
