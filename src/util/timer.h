// Wall-clock timing for the experiment harness.
#ifndef HYDRA_UTIL_TIMER_H_
#define HYDRA_UTIL_TIMER_H_

#include <chrono>

namespace hydra::util {

/// Monotonic wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hydra::util

#endif  // HYDRA_UTIL_TIMER_H_
