// Deterministic random number generation used by data/query generators.
#ifndef HYDRA_UTIL_RNG_H_
#define HYDRA_UTIL_RNG_H_

#include <cstdint>
#include <random>

namespace hydra::util {

/// Seeded pseudo-random generator with the distributions Hydra needs.
/// All dataset and workload generation is reproducible given the seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Standard normal draw.
  double Gaussian() { return normal_(engine_); }
  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) { return mean + stddev * normal_(engine_); }
  /// Uniform draw in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform_(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }
  /// Poisson draw with the given mean.
  int Poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace hydra::util

#endif  // HYDRA_UTIL_RNG_H_
