// Fixed-size worker pool for batch-query execution. Deliberately
// work-stealing-free: one shared FIFO task queue feeds N workers, which is
// all the batch engine needs (its tasks are coarse, one per query stripe)
// and keeps the scheduling order easy to reason about.
#ifndef HYDRA_UTIL_THREAD_POOL_H_
#define HYDRA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hydra::util {

/// Fixed pool of `threads` workers draining one shared task queue.
///
/// Thread safety: Submit and ParallelFor may be called from any thread that
/// is not itself a pool worker (a worker submitting a task and blocking on
/// its completion could deadlock the pool). The destructor drains the queue
/// before joining, so every submitted task runs exactly once.
class ThreadPool {
 public:
  /// Starts `threads` workers (must be >= 1).
  explicit ThreadPool(size_t threads);

  /// Drains the queue, then stops and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw (hydra is no-exceptions on
  /// hot paths; invariant violations abort via HYDRA_CHECK).
  void Submit(std::function<void()> task);

  /// Runs `fn(i)` for every i in [begin, end), distributing indices over
  /// the workers dynamically (grab-next-index), and blocks until all
  /// indices have completed. `fn` must be safe to call concurrently from
  /// `size()` threads; it receives each index exactly once, but in no
  /// guaranteed order — callers that need ordered output should write to
  /// slot i of a pre-sized array.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to return 0 when unknown).
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hydra::util

#endif  // HYDRA_UTIL_THREAD_POOL_H_
