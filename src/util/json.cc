#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/check.h"

namespace hydra::util {

void JsonWriter::BeforeValue() {
  HYDRA_CHECK_MSG(!root_done_, "value after the root container closed");
  if (stack_.empty()) return;  // the root value itself
  if (stack_.back() == Scope::kObject) {
    HYDRA_CHECK_MSG(key_pending_, "object values need a Key() first");
    key_pending_ = false;
  } else {
    HYDRA_CHECK_MSG(!key_pending_, "Key() inside an array");
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
}

void JsonWriter::Key(std::string_view name) {
  HYDRA_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                  "Key() outside an object");
  HYDRA_CHECK_MSG(!key_pending_, "two Key() calls without a value");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  Escaped(name);
  out_ += ':';
  key_pending_ = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::EndObject() {
  HYDRA_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                  "EndObject outside an object");
  HYDRA_CHECK_MSG(!key_pending_, "EndObject with a dangling Key()");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::EndArray() {
  HYDRA_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kArray,
                  "EndArray outside an array");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::Escaped(std::string_view s) {
  out_ += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  Escaped(value);
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Infinity
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
  }
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  if (stack_.empty()) root_done_ = true;
}

const std::string& JsonWriter::str() const {
  HYDRA_CHECK_MSG(root_done_ && stack_.empty(),
                  "str() before the root container closed");
  return out_;
}

Status JsonWriter::WriteTo(const std::string& path) const {
  const std::string& doc = str();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("cannot open " + path + " for writing: " +
                         std::strerror(errno));
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) return Status::Error("short write to " + path);
  return Status::Ok();
}

}  // namespace hydra::util
