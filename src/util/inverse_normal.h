// Inverse of the standard normal CDF, used to derive SAX breakpoints.
#ifndef HYDRA_UTIL_INVERSE_NORMAL_H_
#define HYDRA_UTIL_INVERSE_NORMAL_H_

namespace hydra::util {

/// Returns Phi^{-1}(p) for p in (0, 1): the value x such that a standard
/// normal variable is below x with probability p. Accurate to ~1e-9
/// (Acklam's rational approximation refined with one Halley step).
double InverseNormalCdf(double p);

/// Standard normal CDF Phi(x).
double NormalCdf(double x);

}  // namespace hydra::util

#endif  // HYDRA_UTIL_INVERSE_NORMAL_H_
