// A dataset opened from disk without loading it: the mmap half of the
// out-of-core backend. The series file is validated (io::SeriesFile),
// mapped read-only, and wrapped in a borrowed-view core::Dataset whose
// bulk access (operator[]/values(): index construction, scans) streams
// the mapping through the kernel page cache, while query-time
// verification reads go through the attached storage::BufferPool as
// real, measured, budget-bounded preads. Slices of dataset() compose
// zero-copy, pool included — the sharded subsystem works unchanged.
#ifndef HYDRA_STORAGE_FILE_DATASET_H_
#define HYDRA_STORAGE_FILE_DATASET_H_

#include <memory>
#include <string>

#include "core/dataset.h"
#include "io/series_file.h"
#include "storage/buffer_pool.h"
#include "util/status.h"

namespace hydra::storage {

class FileDataset {
 public:
  /// Opens `path`, validates it, maps it, and builds the pool. Returns an
  /// error Status (never aborts) for a missing, malformed, truncated, or
  /// unmappable file. `name` labels the resulting dataset.
  static util::Result<std::unique_ptr<FileDataset>> Open(
      const std::string& path, const std::string& name,
      const BufferPoolOptions& pool_options);

  ~FileDataset();
  FileDataset(const FileDataset&) = delete;
  FileDataset& operator=(const FileDataset&) = delete;

  /// The borrowed-view dataset over the mapping, with the pool attached.
  /// Valid (as are all slices of it) for this FileDataset's lifetime.
  const core::Dataset& dataset() const { return dataset_; }
  core::Dataset& dataset() { return dataset_; }

  const io::SeriesFile& file() const { return file_; }
  const BufferPool& pool() const { return pool_; }

 private:
  FileDataset(io::SeriesFile file, void* map, size_t map_bytes,
              const std::string& name, const BufferPoolOptions& pool_options);

  io::SeriesFile file_;
  void* map_ = nullptr;  // whole file, header included; nullptr for an empty file
  size_t map_bytes_ = 0;
  BufferPool pool_;
  core::Dataset dataset_;
};

}  // namespace hydra::storage

#endif  // HYDRA_STORAGE_FILE_DATASET_H_
