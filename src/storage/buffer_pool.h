// A fixed-budget buffer pool over an io::SeriesFile: the raw layer of the
// out-of-core backend. Pages hold whole series (a series never spans two
// pages), frames are recycled LRU among unpinned pages, and every fetch is
// a real pread(2) with measured accounting — this is the disk-access
// pattern the paper's fig04/fig06/fig07 measure, made an actual bounded
// I/O path instead of a pointer dereference.
//
// Invariants:
//   - Memory is bounded: frame_count() frames of page_bytes (rounded down
//     to whole series) each, fixed at construction. No fetch ever
//     allocates.
//   - Pinned-page discipline: a frame with pins > 0 is never evicted or
//     reloaded; readers hold at most one pin (core::RawSeriesSource::Pin)
//     and release it before their next fetch, so pool capacity 1 is
//     deadlock-free — a reader needing a frame while every frame is
//     pinned blocks until a pin drops, and some reader's next read (or
//     query end) always drops one.
//   - Single-flight loads: concurrent misses of one page wait for the
//     first fetcher instead of issuing duplicate preads.
//
// Counters: per-read deltas go to the caller's SearchStats (pool_hits /
// pool_misses / pool_evictions / pool_pread_calls / pool_bytes_read —
// *measured*, disjoint from the modeled DiskModel counters); process-wide
// totals accumulate in counters() for end-of-run summaries.
#ifndef HYDRA_STORAGE_BUFFER_POOL_H_
#define HYDRA_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/raw_source.h"
#include "core/search_stats.h"
#include "core/types.h"
#include "io/series_file.h"

namespace hydra::storage {

struct BufferPoolOptions {
  /// Total frame-memory budget; the frame count is budget / page size,
  /// floored, with a minimum of one frame.
  size_t budget_bytes = size_t{64} << 20;
  /// Requested page size; rounded down to a whole number of series (and
  /// up to at least one series).
  size_t page_bytes = size_t{1} << 20;
};

/// Snapshot of the process-wide measured totals.
struct PoolCounters {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t pread_calls = 0;
  int64_t bytes_read = 0;
};

class BufferPool : public core::RawSeriesSource {
 public:
  /// `file` must stay open for the pool's lifetime.
  BufferPool(const io::SeriesFile* file, const BufferPoolOptions& options);

  /// See core::RawSeriesSource. `index` addresses the file's series;
  /// `stats` (nullable) receives the measured deltas. An I/O failure on
  /// the fetch path (the backing file truncated or replaced mid-run)
  /// CHECK-aborts with the pread's typed message — by then the data the
  /// query was promised no longer exists, and a wrong answer would be
  /// worse than a crash. Probe the file first via SeriesFile::ReadAt to
  /// handle truncation as a recoverable error.
  core::SeriesView ReadPinned(size_t index, Pin* pin,
                              core::SearchStats* stats) override;

  /// Geometry, fixed at construction.
  size_t series_per_page() const { return per_page_; }
  size_t page_count() const { return page_count_; }
  size_t frame_count() const { return frames_.size(); }
  size_t frame_bytes() const {
    return per_page_ * file_->series_bytes();
  }

  PoolCounters counters() const;

 protected:
  void Unpin(uint64_t token) override;

 private:
  struct Frame {
    std::vector<core::Value> values;
    /// Resident page, or -1 for a free frame.
    int64_t page = -1;
    int pins = 0;
    /// True while the pread of this frame's page is in flight (off-lock);
    /// readers of the same page wait on cv_ instead of double-fetching.
    bool loading = false;
    uint64_t last_use = 0;
  };

  const io::SeriesFile* file_;
  size_t per_page_;
  size_t page_count_;
  std::vector<Frame> frames_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<int64_t, size_t> resident_;  // page -> frame
  uint64_t tick_ = 0;

  std::atomic<int64_t> total_hits_{0};
  std::atomic<int64_t> total_misses_{0};
  std::atomic<int64_t> total_evictions_{0};
  std::atomic<int64_t> total_preads_{0};
  std::atomic<int64_t> total_bytes_{0};
};

}  // namespace hydra::storage

#endif  // HYDRA_STORAGE_BUFFER_POOL_H_
