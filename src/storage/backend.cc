#include "storage/backend.h"

#include <utility>

#include "io/series_file.h"

namespace hydra::storage {

util::Result<StorageBackend> ParseStorageBackend(const std::string& token) {
  if (token == "ram") return StorageBackend::kRam;
  if (token == "mmap") return StorageBackend::kMmap;
  return util::Status::Error("unknown storage backend '" + token +
                             "' (expected ram or mmap)");
}

const char* StorageBackendName(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kRam:
      return "ram";
    case StorageBackend::kMmap:
      return "mmap";
  }
  return "?";
}

util::Result<StorageHandle> StorageHandle::Open(const std::string& path,
                                                const std::string& name,
                                                const StorageOptions& options) {
  StorageHandle handle;
  handle.backend_ = options.backend;
  if (options.backend == StorageBackend::kRam) {
    auto data = io::ReadSeriesFile(path, name);
    if (!data.ok()) return data.status();
    handle.ram_ = std::move(data).value();
    return handle;
  }
  auto file = FileDataset::Open(path, name, options.pool);
  if (!file.ok()) return file.status();
  handle.file_ = std::move(file).value();
  return handle;
}

std::string StorageHandle::Describe() const {
  if (file_ == nullptr) return "storage: ram (whole dataset resident)";
  const BufferPool& pool = file_->pool();
  const size_t pool_bytes = pool.frame_count() * pool.frame_bytes();
  return "storage: mmap pool=" + std::to_string(pool_bytes / (1 << 20)) +
         "MiB (" + std::to_string(pool.frame_count()) + " frames x " +
         std::to_string(pool.series_per_page()) + " series/page, " +
         std::to_string(pool.page_count()) + " pages on disk)";
}

}  // namespace hydra::storage
