#include "storage/buffer_pool.h"

#include <algorithm>
#include <limits>

#include "obs/trace.h"
#include "util/check.h"
#include "util/status.h"

namespace hydra::storage {

BufferPool::BufferPool(const io::SeriesFile* file,
                       const BufferPoolOptions& options)
    : file_(file) {
  HYDRA_CHECK_MSG(file_ != nullptr && file_->fd() >= 0,
                  "BufferPool needs an open SeriesFile");
  const size_t series_bytes = file_->series_bytes();
  per_page_ = options.page_bytes / series_bytes;
  if (per_page_ == 0) per_page_ = 1;  // one series per page at minimum
  page_count_ = (file_->count() + per_page_ - 1) / per_page_;
  const size_t frame_value_count = per_page_ * file_->length();
  size_t frames = options.budget_bytes / (per_page_ * series_bytes);
  if (frames == 0) frames = 1;  // the pool always holds at least one page
  // More frames than pages would never be filled; cap to the file.
  if (page_count_ != 0 && frames > page_count_) frames = page_count_;
  frames_.resize(frames);
  for (Frame& frame : frames_) {
    frame.values.resize(frame_value_count);
  }
  resident_.reserve(frames);
}

core::SeriesView BufferPool::ReadPinned(size_t index, Pin* pin,
                                        core::SearchStats* stats) {
  HYDRA_CHECK_MSG(index < file_->count(),
                  "BufferPool read beyond the series file");
  HYDRA_CHECK_MSG(pin != nullptr, "BufferPool reads require a pin");
  const int64_t page = static_cast<int64_t>(index / per_page_);
  const size_t offset = (index % per_page_) * file_->length();
  // Fast path: the caller's pin already holds the wanted page. The pin
  // guarantees the frame can be neither evicted nor reloaded, so reading
  // frame.page without the lock is race-free.
  if (PinSource(*pin) == this) {
    const Frame& held = frames_[PinToken(*pin)];
    if (held.page == page) {
      if (stats != nullptr) ++stats->pool_hits;
      total_hits_.fetch_add(1, std::memory_order_relaxed);
      return core::SeriesView(held.values.data() + offset, file_->length());
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  // Pinned-page rule: drop the old hold before acquiring the new one, so a
  // reader never pins two frames at once. Unpin relocks, so release while
  // unlocked-equivalent path: do it inline here under the lock.
  if (PinSource(*pin) == this) {
    Frame& held = frames_[PinToken(*pin)];
    HYDRA_CHECK_MSG(held.pins > 0, "BufferPool pin underflow");
    --held.pins;
    BindPin(pin, nullptr, 0);
    cv_.notify_all();
  } else {
    // A pin on a *different* source must be released through that source.
    pin->Release();
  }
  for (;;) {
    const auto it = resident_.find(page);
    if (it != resident_.end()) {
      Frame& frame = frames_[it->second];
      if (frame.loading) {
        // Another reader's pread is in flight for this page; wait for it
        // rather than fetching twice.
        HYDRA_OBS_SPAN_ARG("pool_wait", "page", page);
        cv_.wait(lock);
        continue;
      }
      ++frame.pins;
      frame.last_use = ++tick_;
      BindPin(pin, this, it->second);
      if (stats != nullptr) ++stats->pool_hits;
      total_hits_.fetch_add(1, std::memory_order_relaxed);
      return core::SeriesView(frame.values.data() + offset, file_->length());
    }
    // Miss: claim the least-recently-used unpinned, non-loading frame.
    size_t victim = frames_.size();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (size_t f = 0; f < frames_.size(); ++f) {
      const Frame& frame = frames_[f];
      if (frame.pins != 0 || frame.loading) continue;
      if (frame.page < 0) {  // a free frame beats any eviction
        victim = f;
        break;
      }
      if (frame.last_use < oldest) {
        oldest = frame.last_use;
        victim = f;
      }
    }
    if (victim == frames_.size()) {
      // Every frame is pinned or loading. The pinned-page rule guarantees
      // progress: each reader holds at most one pin and drops it on its
      // next read, so a frame frees up without us holding anything.
      cv_.wait(lock);
      continue;
    }
    Frame& frame = frames_[victim];
    const bool evicting = frame.page >= 0;
    if (evicting) {
      resident_.erase(frame.page);
      if (stats != nullptr) ++stats->pool_evictions;
      total_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    frame.page = page;
    frame.loading = true;
    ++frame.pins;  // pinned through the load so no one can steal the frame
    resident_.emplace(page, victim);
    lock.unlock();
    const size_t first = static_cast<size_t>(page) * per_page_;
    const size_t n = std::min(per_page_, file_->count() - first);
    util::Status read;
    {
      HYDRA_OBS_SPAN_ARG("pool_miss_pread", "page", page);
      read = file_->ReadSeries(first, n, frame.values.data());
    }
    lock.lock();
    frame.loading = false;
    if (!read.ok()) {
      // The validated file vanished or shrank mid-run; the answer this
      // read was verifying can no longer be computed correctly.
      --frame.pins;
      frame.page = -1;
      resident_.erase(page);
      cv_.notify_all();
      HYDRA_CHECK_MSG(false, read.message().c_str());
    }
    frame.last_use = ++tick_;
    BindPin(pin, this, victim);
    if (stats != nullptr) {
      ++stats->pool_misses;
      ++stats->pool_pread_calls;
      stats->pool_bytes_read +=
          static_cast<int64_t>(n * file_->series_bytes());
    }
    total_misses_.fetch_add(1, std::memory_order_relaxed);
    total_preads_.fetch_add(1, std::memory_order_relaxed);
    total_bytes_.fetch_add(static_cast<int64_t>(n * file_->series_bytes()),
                           std::memory_order_relaxed);
    cv_.notify_all();  // waiters for this page can now pin it
    return core::SeriesView(frame.values.data() + offset, file_->length());
  }
}

void BufferPool::Unpin(uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& frame = frames_[token];
  HYDRA_CHECK_MSG(frame.pins > 0, "BufferPool pin underflow");
  --frame.pins;
  cv_.notify_all();
}

PoolCounters BufferPool::counters() const {
  PoolCounters totals;
  totals.hits = total_hits_.load(std::memory_order_relaxed);
  totals.misses = total_misses_.load(std::memory_order_relaxed);
  totals.evictions = total_evictions_.load(std::memory_order_relaxed);
  totals.pread_calls = total_preads_.load(std::memory_order_relaxed);
  totals.bytes_read = total_bytes_.load(std::memory_order_relaxed);
  return totals;
}

}  // namespace hydra::storage
