// Storage backend selection: one Open() call that yields a queryable
// core::Dataset either fully in RAM (the historical behavior, still the
// default) or file-backed via mmap + buffer pool (storage::FileDataset).
// Answers are bit-identical across backends — the backend changes where
// the bytes live, never which bytes are compared — so `hydra query
// --storage mmap` must diff clean against the RAM run.
#ifndef HYDRA_STORAGE_BACKEND_H_
#define HYDRA_STORAGE_BACKEND_H_

#include <memory>
#include <string>

#include "core/dataset.h"
#include "storage/file_dataset.h"
#include "util/status.h"

namespace hydra::storage {

enum class StorageBackend {
  kRam,   // bulk-load the whole file into an owning Dataset
  kMmap,  // map the file; verification reads through the buffer pool
};

/// Parses "ram" / "mmap". Returns an error Status naming the bad token.
util::Result<StorageBackend> ParseStorageBackend(const std::string& token);
const char* StorageBackendName(StorageBackend backend);

struct StorageOptions {
  StorageBackend backend = StorageBackend::kRam;
  BufferPoolOptions pool;
};

/// An opened dataset plus whatever owns its memory (nothing extra for RAM,
/// the FileDataset for mmap). Movable; dataset() stays valid while the
/// handle lives.
class StorageHandle {
 public:
  StorageHandle() = default;

  /// Opens `path` under `options`. Errors (missing/corrupt file, mmap
  /// failure) come back as Status, never aborts.
  static util::Result<StorageHandle> Open(const std::string& path,
                                          const std::string& name,
                                          const StorageOptions& options);

  const core::Dataset& dataset() const {
    return file_ != nullptr ? file_->dataset() : ram_;
  }
  StorageBackend backend() const { return backend_; }
  /// True when verification reads go through a buffer pool (mmap backend).
  bool pooled() const { return file_ != nullptr; }
  /// Pool totals; zeroes for the RAM backend.
  PoolCounters counters() const {
    return file_ != nullptr ? file_->pool().counters() : PoolCounters{};
  }
  /// One-line human summary of the backend geometry, e.g.
  /// "storage: mmap pool=16MiB (16 frames x 256 series/page)" or
  /// "storage: ram (whole dataset resident)".
  std::string Describe() const;

 private:
  StorageBackend backend_ = StorageBackend::kRam;
  core::Dataset ram_;
  std::unique_ptr<FileDataset> file_;
};

}  // namespace hydra::storage

#endif  // HYDRA_STORAGE_BACKEND_H_
