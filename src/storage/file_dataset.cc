#include "storage/file_dataset.h"

#include <sys/mman.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/types.h"
#include "util/check.h"

namespace hydra::storage {

util::Result<std::unique_ptr<FileDataset>> FileDataset::Open(
    const std::string& path, const std::string& name,
    const BufferPoolOptions& pool_options) {
  auto opened = io::SeriesFile::Open(path);
  if (!opened.ok()) return opened.status();
  io::SeriesFile file = std::move(opened).value();
  void* map = nullptr;
  const size_t map_bytes =
      io::SeriesFile::kHeaderBytes + file.count() * file.series_bytes();
  if (file.count() != 0) {
    // Map the whole file (header included) so the first value lands at a
    // 24-byte offset — 4-byte aligned for float access. PROT_READ keeps
    // the view immutable; MAP_SHARED avoids copy-on-write reservations.
    map = ::mmap(nullptr, map_bytes, PROT_READ, MAP_SHARED, file.fd(), 0);
    if (map == MAP_FAILED) {
      return util::Status::Error("cannot mmap series file: " + path + " (" +
                                 std::strerror(errno) + ")");
    }
  }
  return std::unique_ptr<FileDataset>(
      new FileDataset(std::move(file), map, map_bytes, name, pool_options));
}

FileDataset::FileDataset(io::SeriesFile file, void* map, size_t map_bytes,
                         const std::string& name,
                         const BufferPoolOptions& pool_options)
    : file_(std::move(file)),
      map_(map),
      map_bytes_(map_bytes),
      pool_(&file_, pool_options) {
  const core::Value* values =
      map_ != nullptr
          ? reinterpret_cast<const core::Value*>(
                static_cast<const char*>(map_) + io::SeriesFile::kHeaderBytes)
          : nullptr;
  dataset_ = core::Dataset::BorrowedView(name, values, file_.count(),
                                         file_.length());
  dataset_.AttachRawSource(&pool_);
}

FileDataset::~FileDataset() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

}  // namespace hydra::storage
