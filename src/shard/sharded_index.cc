#include "shard/sharded_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/knn.h"
#include "io/index_codec.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::shard {

namespace {

/// Hard cap on the manifest's shard count: far above any sane partitioning
/// (shards are clamped to the dataset size at build time anyway), low
/// enough that a garbled count cannot allocate absurdly.
constexpr uint64_t kMaxShards = 4096;

const char kManifestSection[] = "sharded-manifest";

/// The one merge used by every query flavor: remaps each shard's local-id
/// answers to global ids (local + slice begin), folds each shard's ledger
/// into `*stats` in shard order, and returns all candidates sorted by
/// (dist_sq, id) — deterministic regardless of which shard finished
/// first. `neighbors_of` selects the answer vector of the part type
/// (KnnResult::neighbors / RangeResult::matches).
template <typename Part, typename NeighborsOf>
std::vector<core::Neighbor> MergeParts(const std::vector<Part>& parts,
                                       const std::vector<size_t>& begins,
                                       core::SearchStats* stats,
                                       NeighborsOf neighbors_of) {
  std::vector<core::Neighbor> all;
  for (size_t i = 0; i < parts.size(); ++i) {
    const size_t begin = begins[i];
    for (const core::Neighbor& n : neighbors_of(parts[i])) {
      all.push_back({static_cast<core::SeriesId>(begin + n.id), n.dist_sq});
    }
    stats->Add(parts[i].stats);
  }
  std::sort(all.begin(), all.end());
  return all;
}

/// Near-equal contiguous partition of [0, count): the first count % shards
/// parts get one extra series. Deterministic, so a rebuild always produces
/// the same boundaries as the persisted manifest.
std::vector<std::pair<size_t, size_t>> EvenParts(size_t count,
                                                 size_t shards) {
  std::vector<std::pair<size_t, size_t>> parts;
  parts.reserve(shards);
  const size_t base = count / shards;
  const size_t extra = count % shards;
  size_t begin = 0;
  for (size_t i = 0; i < shards; ++i) {
    const size_t size = base + (i < extra ? 1 : 0);
    parts.emplace_back(begin, size);
    begin += size;
  }
  return parts;
}

}  // namespace

ShardedIndex::ShardedIndex(MethodFactory factory, ShardedOptions options)
    : factory_(std::move(factory)), options_(options) {
  HYDRA_CHECK_MSG(factory_ != nullptr, "ShardedIndex needs a factory");
  HYDRA_CHECK_MSG(options_.shards >= 1,
                  "ShardedIndex needs at least one shard");
  const std::unique_ptr<core::SearchMethod> probe = factory_();
  HYDRA_CHECK_MSG(probe != nullptr, "factory returned no method");
  component_name_ = probe->name();
  component_traits_ = probe->traits();
  HYDRA_CHECK_MSG(component_traits_.shardable,
                  "ShardedIndex component must advertise traits().shardable "
                  "(the CLI refuses unshardable methods up front)");
}

std::string ShardedIndex::name() const {
  return "Sharded[" + component_name_ + "]";
}

core::MethodTraits ShardedIndex::traits() const {
  core::MethodTraits traits = component_traits_;
  // The fan-out pool is per-call state and components tolerate concurrent
  // queries iff they advertise it, so the composite's concurrency mirrors
  // the component's (ADS+ stays serial across queries — but still fans
  // each single query out across its shards).
  traits.shardable = false;
  traits.shard_reason =
      "already a sharded container; nested sharding is not supported";
  return traits;
}

core::Footprint ShardedIndex::footprint() const {
  core::Footprint total;
  for (const auto& shard : shards_) {
    const core::Footprint f = shard->footprint();
    total.total_nodes += f.total_nodes;
    total.leaf_nodes += f.leaf_nodes;
    total.memory_bytes += f.memory_bytes;
    total.disk_bytes += f.disk_bytes;
    total.leaf_fill_fractions.insert(total.leaf_fill_fractions.end(),
                                     f.leaf_fill_fractions.begin(),
                                     f.leaf_fill_fractions.end());
    total.leaf_depths.insert(total.leaf_depths.end(), f.leaf_depths.begin(),
                             f.leaf_depths.end());
  }
  return total;
}

double ShardedIndex::MeanTlb(core::SeriesView query) const {
  double weighted = 0.0;
  double weight = 0.0;
  for (const auto& shard : shards_) {
    const double tlb = shard->MeanTlb(query);
    if (std::isnan(tlb)) continue;
    // footprint() per call rather than a cached leaf count: ADS+ splits
    // leaves during queries, so weights must track the *current* tree.
    // MeanTlb is a diagnostics path (TLB exhibits), never a query hot
    // path, so the extra traversal is acceptable.
    const double leaves =
        static_cast<double>(shard->footprint().leaf_nodes);
    if (leaves <= 0.0) continue;
    weighted += tlb * leaves;
    weight += leaves;
  }
  if (weight == 0.0) return std::numeric_limits<double>::quiet_NaN();
  return weighted / weight;
}

void ShardedIndex::InstantiateShards(
    const core::Dataset& data,
    const std::vector<std::pair<size_t, size_t>>& parts) {
  begins_.clear();
  slices_.clear();
  shards_.clear();
  begins_.reserve(parts.size());
  slices_.reserve(parts.size());
  shards_.reserve(parts.size());
  for (const auto& [begin, count] : parts) {
    begins_.push_back(begin);
    slices_.push_back(data.Slice(begin, count));
    shards_.push_back(factory_());
  }
  const size_t threads =
      options_.threads == 0
          ? std::min(parts.size(), util::ThreadPool::HardwareConcurrency())
          : options_.threads;
  const size_t workers = std::min(threads, parts.size());
  pool_ = workers > 1 ? std::make_unique<util::ThreadPool>(workers)
                      : nullptr;
}

void ShardedIndex::ForEachShard(const std::function<void(size_t)>& fn) {
  if (pool_ != nullptr) {
    pool_->ParallelFor(0, shards_.size(), fn);
  } else {
    for (size_t i = 0; i < shards_.size(); ++i) fn(i);
  }
}

int64_t ShardedIndex::SplitBudget(int64_t total, size_t shard) const {
  if (total == core::KnnPlan::kUnlimited) return total;
  const auto shards = static_cast<int64_t>(shards_.size());
  return total / shards +
         (static_cast<int64_t>(shard) < total % shards ? 1 : 0);
}

core::BuildStats ShardedIndex::DoBuild(const core::Dataset& data) {
  HYDRA_CHECK_MSG(data.size() > 0,
                  "ShardedIndex cannot shard an empty dataset");
  const size_t shards = std::min(options_.shards, data.size());
  InstantiateShards(data, EvenParts(data.size(), shards));
  std::vector<core::BuildStats> stats(shards_.size());
  // Per-shard builds touch only their own component and slice, so the
  // fan-out is safe even though Build itself is never concurrent-safe
  // *per instance*; the TSan-checked shard battery holds this honest.
  ForEachShard([&](size_t i) { stats[i] = shards_[i]->Build(slices_[i]); });
  core::BuildStats total;
  for (const core::BuildStats& s : stats) {
    // Summed wall-clock of the per-shard builds = total CPU work, the
    // batch-engine convention (build wall-clock shrinks with threads).
    total.cpu_seconds += s.cpu_seconds;
    total.bytes_written += s.bytes_written;
    total.random_writes += s.random_writes;
    total.bytes_read += s.bytes_read;
    total.random_reads += s.random_reads;
  }
  return total;
}

void ShardedIndex::DoSave(io::IndexWriter* writer) const {
  writer->BeginSection(kManifestSection);
  writer->WriteString(component_name_);
  writer->WriteU64(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    writer->WriteU64(begins_[i]);
    writer->WriteU64(slices_[i].size());
  }
  for (const core::Dataset& slice : slices_) {
    const io::DatasetFingerprint fp = io::DatasetFingerprint::Of(slice);
    writer->WriteU64(fp.count);
    writer->WriteU64(fp.length);
    writer->WriteU64(fp.bytes);
  }
  writer->EndSection();
  // Each component serializes its own sections right after the manifest,
  // in shard order — the reader consumes them in the same order.
  for (const auto& shard : shards_) ComponentSave(*shard, writer);
}

util::Status ShardedIndex::DoOpen(io::IndexReader* reader,
                                  const core::Dataset& data) {
  util::Status entered = reader->EnterSection(kManifestSection);
  if (!entered.ok()) return entered;
  const std::string component = reader->ReadString();
  const uint64_t shards = reader->ReadU64();
  if (!reader->ok()) return reader->status();
  if (component != component_name_) {
    return util::Status::Error(
        "sharded container holds '" + component + "' shards, not '" +
        component_name_ + "'");
  }
  if (shards < 1 || shards > kMaxShards ||
      shards > static_cast<uint64_t>(data.size())) {
    return util::Status::Error(
        "sharded manifest has an invalid shard count (" +
        std::to_string(shards) + " over " + std::to_string(data.size()) +
        " series)");
  }
  std::vector<std::pair<size_t, size_t>> parts;
  parts.reserve(shards);
  uint64_t expected_begin = 0;
  for (uint64_t i = 0; i < shards; ++i) {
    const uint64_t begin = reader->ReadU64();
    const uint64_t count = reader->ReadU64();
    if (!reader->ok()) return reader->status();
    if (begin != expected_begin || count == 0 ||
        count > data.size() - begin) {
      return util::Status::Error(
          "sharded manifest boundaries do not partition the dataset");
    }
    parts.emplace_back(begin, count);
    expected_begin = begin + count;
  }
  if (expected_begin != data.size()) {
    return util::Status::Error(
        "sharded manifest boundaries do not cover the dataset (" +
        std::to_string(expected_begin) + " of " +
        std::to_string(data.size()) + " series)");
  }
  InstantiateShards(data, parts);
  for (size_t i = 0; i < shards_.size(); ++i) {
    io::DatasetFingerprint stored;
    stored.count = reader->ReadU64();
    stored.length = reader->ReadU64();
    stored.bytes = reader->ReadU64();
    if (!reader->ok()) return reader->status();
    const io::DatasetFingerprint actual =
        io::DatasetFingerprint::Of(slices_[i]);
    if (!(stored == actual)) {
      return util::Status::Error(
          "shard " + std::to_string(i) + " fingerprint mismatch: stored " +
          stored.ToString() + ", slice has " + actual.ToString());
    }
  }
  // Components open serially: sections live in one container and must be
  // consumed in write order (shard load parallelism would need per-shard
  // files; measured load_seconds stays honest either way).
  for (size_t i = 0; i < shards_.size(); ++i) {
    util::Status opened =
        ComponentOpen(shards_[i].get(), reader, slices_[i]);
    if (!opened.ok()) return opened;
  }
  return util::Status::Ok();
}

core::KnnResult ShardedIndex::DoSearchKnn(core::SeriesView query,
                                          const core::KnnPlan& plan) {
  core::SharedBound shared;
  std::vector<core::KnnResult> parts(shards_.size());
  ForEachShard([&](size_t i) {
    HYDRA_OBS_SPAN_ARG("shard_search", "shard", i);
    core::KnnPlan local = plan;
    local.shared_bound = &shared;
    local.max_leaves = SplitBudget(plan.max_leaves, i);
    local.max_raw = SplitBudget(plan.max_raw, i);
    parts[i] = ComponentSearchKnn(shards_[i].get(), query, local);
  });
  // Merge (timed as the composite's own CPU work): keep the k best
  // overall of the per-shard top-k sets.
  HYDRA_OBS_SPAN_ARG("shard_merge", "shards", shards_.size());
  util::WallTimer merge_timer;
  core::KnnResult result;
  result.neighbors =
      MergeParts(parts, begins_, &result.stats,
                 [](const core::KnnResult& r) -> const std::vector<core::Neighbor>& {
                   return r.neighbors;
                 });
  if (result.neighbors.size() > plan.k) result.neighbors.resize(plan.k);
  result.stats.cpu_seconds += merge_timer.Seconds();
  return result;
}

core::KnnResult ShardedIndex::DoSearchKnnNg(core::SeriesView query,
                                            size_t k) {
  std::vector<core::KnnResult> parts(shards_.size());
  ForEachShard([&](size_t i) {
    HYDRA_OBS_SPAN_ARG("shard_search", "shard", i);
    parts[i] = ComponentSearchKnnNg(shards_[i].get(), query, k);
  });
  HYDRA_OBS_SPAN_ARG("shard_merge", "shards", shards_.size());
  util::WallTimer merge_timer;
  core::KnnResult result;
  result.neighbors =
      MergeParts(parts, begins_, &result.stats,
                 [](const core::KnnResult& r) -> const std::vector<core::Neighbor>& {
                   return r.neighbors;
                 });
  if (result.neighbors.size() > k) result.neighbors.resize(k);
  result.stats.cpu_seconds += merge_timer.Seconds();
  return result;
}

core::RangeResult ShardedIndex::DoSearchRange(core::SeriesView query,
                                              const core::RangePlan& plan) {
  std::vector<core::RangeResult> parts(shards_.size());
  ForEachShard([&](size_t i) {
    HYDRA_OBS_SPAN_ARG("shard_search", "shard", i);
    parts[i] = ComponentSearchRange(shards_[i].get(), query, plan);
  });
  HYDRA_OBS_SPAN_ARG("shard_merge", "shards", shards_.size());
  util::WallTimer merge_timer;
  core::RangeResult result;
  result.matches =
      MergeParts(parts, begins_, &result.stats,
                 [](const core::RangeResult& r) -> const std::vector<core::Neighbor>& {
                   return r.matches;
                 });
  result.stats.cpu_seconds += merge_timer.Seconds();
  return result;
}

}  // namespace hydra::shard
