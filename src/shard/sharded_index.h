// Sharded index container: N per-shard SearchMethod instances over disjoint
// contiguous slices of one Dataset, behind the ordinary SearchMethod
// contract — parallel per-shard Build, fan-out/merge Execute with a shared
// cross-shard k-NN bound, and persistence of all shards in one container
// file (the route the parallel-indexing literature takes to multi-core:
// partition the collection, search partitions independently, merge
// candidates).
#ifndef HYDRA_SHARD_SHARDED_INDEX_H_
#define HYDRA_SHARD_SHARDED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "core/method.h"
#include "util/thread_pool.h"

namespace hydra::shard {

/// Creates one (unbuilt) shard instance. The factory must return the same
/// method configuration every call — shards of one container are
/// homogeneous.
using MethodFactory =
    std::function<std::unique_ptr<core::SearchMethod>()>;

struct ShardedOptions {
  /// Shards requested. Clamped to [1, dataset size] at Build; a persisted
  /// container's manifest overrides it at Open (like every persisted
  /// method option).
  size_t shards = 2;
  /// Worker threads for the per-shard build fan-out and the per-query
  /// shard fan-out. 0 = min(shard count, hardware concurrency); 1 = fully
  /// serial (no pool). Answers are bit-identical at any thread count.
  size_t threads = 0;
};

/// A SearchMethod composed of N per-shard methods ("components"), each
/// built over one contiguous slice of the dataset (see Dataset::Slice).
///
/// Contract highlights (docs/ARCHITECTURE.md, "Sharded index layer"):
///  - Ids: components address series by slice-local id; every result is
///    mapped back to global ids (local + slice begin) before merging.
///  - Exactness: exact k-NN and range answers are bit-identical to the
///    unsharded method at any shard and thread count (ties at the k-th
///    distance break by id, the repo-wide Neighbor order). Cross-shard
///    pruning shares a core::SharedBound through KnnPlan::shared_bound;
///    the bound never drops below the final global k-th distance, so no
///    true neighbor is ever pruned.
///  - Stats: per-shard SearchStats are summed in shard order (cpu_seconds
///    is total CPU work, like the batch engine); the merge's own time is
///    added on top.
///  - Budgets: an explicit max_visited_leaves / max_raw_series budget B
///    over N shards is split B/N per shard, the first B mod N shards
///    getting one extra — the sum never exceeds B. A budget smaller than
///    the shard count starves the tail shards (they answer empty and
///    report the budget as exhausted immediately).
///  - Approximate modes: fan out with the same per-shard plan; the
///    epsilon guarantee survives the merge (same bound argument), while
///    ng returns the merged best of one descent *per shard* — at least as
///    good as one global descent, still guarantee-free.
///  - Persistence: one container file. DoSave writes a "sharded-manifest"
///    section (component method name, shard count, slice boundaries,
///    per-shard dataset fingerprints), then routes every component
///    through its own DoSave, so each of the seven persistent methods is
///    shardable for free. Open validates the manifest against the given
///    dataset and routes each component through its DoOpen.
///
/// The dataset outlives the index (the base-class contract); slices held
/// here borrow its buffer.
class ShardedIndex : public core::SearchMethod {
 public:
  /// `factory` creates the component instances; it must produce a method
  /// whose traits() advertise `shardable` (CHECK-aborted otherwise — the
  /// CLI refuses unshardable methods before constructing one of these).
  ShardedIndex(MethodFactory factory, ShardedOptions options);

  /// "Sharded[<component name>]" — the shard count is a property of the
  /// build (and of the persisted manifest), not of the identity.
  std::string name() const override;

  /// Mirrors the component's quality/concurrency/budget traits: a fan-out
  /// delivers exactly the guarantees its components do, and concurrent
  /// *outer* queries are safe iff component queries are. Not itself
  /// shardable (no nested sharding) and persistent iff the component is.
  core::MethodTraits traits() const override;

  /// Summed component footprints (leaf vectors concatenated, shard order).
  core::Footprint footprint() const override;

  /// Leaf-count-weighted mean of the component TLBs (NaN before Build and
  /// for components without summarized leaves).
  double MeanTlb(core::SeriesView query) const override;

  /// Shards actually in use: the clamped option after Build, the manifest
  /// count after Open, 0 before either.
  size_t shard_count() const { return shards_.size(); }

  /// Global id of the first series of shard `i` (i < shard_count()).
  size_t shard_begin(size_t i) const { return begins_[i]; }

 protected:
  core::BuildStats DoBuild(const core::Dataset& data) override;
  void DoSave(io::IndexWriter* writer) const override;
  util::Status DoOpen(io::IndexReader* reader,
                      const core::Dataset& data) override;
  core::KnnResult DoSearchKnn(core::SeriesView query,
                              const core::KnnPlan& plan) override;
  core::KnnResult DoSearchKnnNg(core::SeriesView query, size_t k) override;
  core::RangeResult DoSearchRange(core::SeriesView query,
                                  const core::RangePlan& plan) override;

 private:
  /// Cuts `data` into the given (begin, count) slices and instantiates the
  /// per-shard methods and the fan-out pool.
  void InstantiateShards(const core::Dataset& data,
                         const std::vector<std::pair<size_t, size_t>>& parts);
  /// Runs `fn(i)` for every shard, on the pool when one exists.
  void ForEachShard(const std::function<void(size_t)>& fn);
  /// The budget-split rule (see class comment).
  int64_t SplitBudget(int64_t total, size_t shard) const;

  MethodFactory factory_;
  ShardedOptions options_;
  std::string component_name_;        // from a probe instance, for name()
  core::MethodTraits component_traits_;
  std::vector<size_t> begins_;        // global id of each slice's start
  std::vector<core::Dataset> slices_; // borrow the built-over dataset
  std::vector<std::unique_ptr<core::SearchMethod>> shards_;
  std::unique_ptr<util::ThreadPool> pool_;  // null = serial fan-out
};

}  // namespace hydra::shard

#endif  // HYDRA_SHARD_SHARDED_INDEX_H_
