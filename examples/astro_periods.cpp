// Astronomy scenario (the paper's Astro dataset): a catalog of periodic
// light curves; find stars with light curves similar to a target — the
// core operation in variable-star classification. Uses the VA+file, the
// study's surprise top performer, and shows the effect of its k-means
// cells on this strongly periodic data.
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "bench/registry.h"
#include "gen/realistic.h"
#include "gen/workload.h"
#include "io/disk_model.h"

int main() {
  using namespace hydra;

  const size_t catalog_size = 40000;
  const size_t samples = 256;
  const core::Dataset catalog =
      gen::AstroLikeDataset(catalog_size, samples, 21);
  std::printf("light-curve catalog: %zu curves of %zu samples\n",
              catalog_size, samples);

  auto va = bench::CreateMethod("VA+file");
  const core::BuildStats build = va->Build(catalog);
  std::printf("VA+file approximation built in %.2fs CPU\n",
              build.cpu_seconds);

  // A target curve observed tonight: one of the catalog stars, re-observed
  // with fresh noise.
  const gen::Workload tonight = gen::CtrlWorkload(catalog, 5, 22, 0.3, 0.6);
  const auto ssd = io::DiskModel::Ssd();
  for (size_t q = 0; q < tonight.queries.size(); ++q) {
    const core::QueryResult result =
        va->Execute(tonight.queries[q], core::QuerySpec::Knn(5));
    std::printf(
        "\ntarget %zu (noise sd %.2f): %lld of %zu curves refined "
        "(prune %.4f), modeled SSD time %.4fs\n",
        q, tonight.noise_levels[q],
        static_cast<long long>(result.stats.raw_series_examined),
        catalog.size(),
        1.0 - static_cast<double>(result.stats.raw_series_examined) /
                  static_cast<double>(catalog.size()),
        ssd.QueryTotalSeconds(result.stats));
    for (const auto& n : result.neighbors) {
      std::printf("    star %7u  dist %.4f\n", n.id, std::sqrt(n.dist_sq));
    }
  }
  std::printf(
      "\nTakeaway (paper Figures 7, 9): on SSD-class storage the VA+file's "
      "tight per-series bounds and skip-sequential access make it one of "
      "the best exact methods.\n");
  return 0;
}
