// Subsequence matching via whole matching (Section 2 of the paper): chop
// long recordings into overlapping windows and index them. This is how WM
// methods answer SM queries — here, finding where a motif occurs inside a
// day of sensor readings.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/registry.h"
#include "core/dataset.h"
#include "core/method.h"
#include "gen/random_walk.h"
#include "gen/subsequence.h"

int main() {
  using namespace hydra;

  // Ten long recordings (e.g., one per sensor), 4096 points each.
  const core::Dataset recordings = gen::RandomWalkDataset(10, 4096, 91);
  const size_t window = 128;

  // Chop into overlapping windows (stride 4: 993 windows per recording).
  const gen::ChoppedCollection chopped =
      gen::ChopForWholeMatching(recordings, window, /*stride=*/4);
  std::printf("chopped %zu recordings into %zu windows of %zu points\n",
              recordings.size(), chopped.windows.size(), window);

  auto index = bench::CreateMethod("iSAX2+", 256);
  index->Build(chopped.windows);

  // The query motif: a window cut from recording 7 (with normalization),
  // i.e., "where have we seen this shape before?"
  std::vector<core::Value> motif(recordings[7].begin() + 1000,
                                 recordings[7].begin() + 1000 + window);
  core::ZNormalize(motif);

  const core::QueryResult result =
      index->Execute(motif, core::QuerySpec::Knn(5));
  std::printf("\ntop-5 subsequence matches:\n");
  for (const core::Neighbor& n : result.neighbors) {
    const gen::WindowOrigin& origin = chopped.origins[n.id];
    std::printf("  recording %zu @ offset %5zu   dist %.4f\n", origin.source,
                origin.offset, std::sqrt(n.dist_sq));
  }
  std::printf(
      "\n(The best match is the motif's own position; the others are its "
      "overlapping shifts and genuine recurrences.)\n");
  std::printf(
      "pruning: examined %lld of %zu windows (ratio %.3f)\n",
      static_cast<long long>(result.stats.raw_series_examined),
      chopped.windows.size(),
      1.0 - static_cast<double>(result.stats.raw_series_examined) /
                static_cast<double>(chopped.windows.size()));
  return 0;
}
