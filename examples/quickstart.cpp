// Quickstart: build a collection, index it with the DSTree, answer an
// exact 10-NN query, and inspect the measurement ledger.
//
//   $ ./quickstart
#include <cmath>
#include <cstdio>

#include "bench/registry.h"
#include "core/method.h"
#include "gen/random_walk.h"
#include "gen/workload.h"
#include "io/disk_model.h"

int main() {
  using namespace hydra;

  // 1. A collection of 50,000 z-normalized random-walk series, length 256.
  //    (Swap in io::ReadSeriesFile to load your own binary series file.)
  const core::Dataset data = gen::RandomWalkDataset(50000, 256, /*seed=*/1);
  std::printf("collection: %zu series of length %zu (%.1f MB)\n",
              data.size(), data.length(),
              static_cast<double>(data.bytes()) / 1e6);

  // 2. Build an exact whole-matching index (any of the ten methods by
  //    name: "ADS+", "DSTree", "iSAX2+", "SFA", "VA+file", "UCR-Suite",
  //    "MASS", "Stepwise", "M-tree", "R*-tree").
  auto index = bench::CreateMethod("DSTree", /*leaf_capacity=*/512);
  const core::BuildStats build = index->Build(data);
  std::printf("built %s in %.2fs CPU\n", index->name().c_str(),
              build.cpu_seconds);

  // 3. Answer an exact 10-NN query.
  const gen::Workload probe = gen::RandWorkload(1, data.length(), 2);
  const core::QueryResult result =
      index->Execute(probe.queries[0], core::QuerySpec::Knn(10));
  std::printf("\n10 nearest neighbors (Euclidean distance):\n");
  for (const core::Neighbor& n : result.neighbors) {
    std::printf("  series %7u  dist %.4f\n", n.id, std::sqrt(n.dist_sq));
  }

  // 4. The measurement ledger mirrors the paper's measures.
  const auto& s = result.stats;
  std::printf("\nquery ledger:\n");
  std::printf("  raw series examined : %lld of %zu (pruning %.3f)\n",
              static_cast<long long>(s.raw_series_examined), data.size(),
              1.0 - static_cast<double>(s.raw_series_examined) /
                        static_cast<double>(data.size()));
  std::printf("  sequential reads    : %lld\n",
              static_cast<long long>(s.sequential_reads));
  std::printf("  random accesses     : %lld\n",
              static_cast<long long>(s.random_seeks));
  std::printf("  cpu seconds         : %.4f\n", s.cpu_seconds);
  const auto hdd = io::DiskModel::Hdd();
  const auto ssd = io::DiskModel::Ssd();
  std::printf("  modeled total (HDD) : %.4fs   (SSD): %.4fs\n",
              hdd.QueryTotalSeconds(s), ssd.QueryTotalSeconds(s));
  return 0;
}
