// Method advisor: the paper's Figure 10 decision matrix as a utility. For
// a workload description (collection size, series length, query count,
// storage type), it measures the candidate methods on a scaled-down proxy
// collection and recommends one — the access-path-selection idea the paper
// proposes as future work (Section 5).
//
//   $ ./method_advisor [series] [length] [queries] [hdd|ssd]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/harness.h"
#include "bench/registry.h"
#include "gen/random_walk.h"
#include "gen/workload.h"
#include "io/disk_model.h"

int main(int argc, char** argv) {
  using namespace hydra;

  const size_t count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40000;
  const size_t length = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;
  const size_t queries = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1000;
  const std::string disk_name = argc > 4 ? argv[4] : "hdd";
  const io::DiskModel disk =
      disk_name == "ssd" ? io::DiskModel::Ssd() : io::DiskModel::Hdd();

  std::printf(
      "advising for: %zu series x %zu points, %zu queries, %s storage\n\n",
      count, length, queries, disk.name.c_str());

  // Proxy measurement: cap the collection at a laptop-scale sample; the
  // I/O ledger scales the modeled costs.
  const size_t proxy_count = std::min<size_t>(count, 30000);
  const double scale =
      static_cast<double>(count) / static_cast<double>(proxy_count);
  const auto data = gen::RandomWalkDataset(proxy_count, length, 31);
  const auto probe = gen::RandWorkload(15, length, 32);

  std::string best;
  double best_total = 1e300;
  std::printf("%-10s %12s %14s %14s\n", "method", "idx_s", "per_query_s",
              "workload_s");
  for (const std::string& name : bench::BestSixNames()) {
    const size_t leaf = std::clamp<size_t>(proxy_count / 64, 64, 1024);
    auto method = bench::CreateMethod(name, leaf);
    const bench::MethodRun run = bench::RunMethod(method.get(), data, probe);
    const double idx = bench::IndexSeconds(run, disk) * scale;
    const double per_query =
        bench::ExactWorkloadSeconds(run, disk) * scale /
        static_cast<double>(run.queries.size());
    const double total = idx + per_query * static_cast<double>(queries);
    std::printf("%-10s %12.2f %14.4f %14.1f\n", name.c_str(), idx, per_query,
                total);
    if (total < best_total) {
      best_total = total;
      best = name;
    }
  }
  std::printf(
      "\nrecommendation: %s (estimated %.1fs for indexing plus the %zu-"
      "query workload on %s)\n",
      best.c_str(), best_total, queries, disk.name.c_str());
  std::printf(
      "note: scans win when pruning would be poor; indexes win on "
      "summarizable data and large query counts (paper Figure 10).\n");
  return 0;
}
