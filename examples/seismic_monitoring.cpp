// Seismic monitoring scenario (the paper's Seismic dataset): an archive of
// instrument recordings; given a new recording window, find the most
// similar historical windows — the template-matching primitive behind
// earthquake detection. Compares an index (iSAX2+) against the optimized
// sequential scan on easy (near-duplicate event) and hard (noisy) queries.
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "bench/registry.h"
#include "gen/realistic.h"
#include "gen/workload.h"
#include "io/disk_model.h"

int main() {
  using namespace hydra;

  const size_t archive_size = 30000;
  const size_t window = 256;
  std::printf("seismic archive: %zu windows of %zu samples\n", archive_size,
              window);
  const core::Dataset archive =
      gen::SeismicLikeDataset(archive_size, window, 11);

  // Easy queries: a recorded event plus light noise (repeated aftershock);
  // hard queries: heavily distorted events.
  const gen::Workload easy = gen::CtrlWorkload(archive, 10, 12, 0.05, 0.2);
  const gen::Workload hard = gen::CtrlWorkload(archive, 10, 13, 1.5, 3.0);

  const auto hdd = io::DiskModel::Hdd();
  for (const char* name : {"iSAX2+", "UCR-Suite"}) {
    auto method = bench::CreateMethod(name, 512);
    const bench::MethodRun run_easy =
        bench::RunMethod(method.get(), archive, easy);
    auto method2 = bench::CreateMethod(name, 512);
    const bench::MethodRun run_hard =
        bench::RunMethod(method2.get(), archive, hard);
    std::printf(
        "\n%-10s easy: %6.3fs modeled (prune %.3f) | hard: %6.3fs modeled "
        "(prune %.3f)\n",
        name, bench::ExactWorkloadSeconds(run_easy, hdd),
        bench::MeanPruningRatio(run_easy, archive.size()),
        bench::ExactWorkloadSeconds(run_hard, hdd),
        bench::MeanPruningRatio(run_hard, archive.size()));
  }

  // Show one concrete match: the top hit for the first easy query should
  // be the (lightly perturbed) source event.
  auto index = bench::CreateMethod("iSAX2+", 512);
  index->Build(archive);
  const core::QueryResult result =
      index->Execute(easy.queries[0], core::QuerySpec::Knn(3));
  std::printf("\ntop matches for aftershock window (noise sd %.2f):\n",
              easy.noise_levels[0]);
  for (const auto& n : result.neighbors) {
    std::printf("  archive window %7u at distance %.4f\n", n.id,
                std::sqrt(n.dist_sq));
  }
  std::printf(
      "\nTakeaway (paper Table 2): indexes shine on easy/templated "
      "queries; on hard queries their pruning collapses and the optimized "
      "scan catches up.\n");
  return 0;
}
