// Serve-daemon throughput scenario: queries per second versus client
// concurrency and answer-cache hit ratio, through real loopback sockets
// against the in-process serve::Server. This exhibit is ours, not the
// paper's — it characterizes the daemon subsystem: how much the framed
// protocol + admission + scheduler stack costs on top of direct Execute,
// and how much a warm answer cache buys back. The hit ratio is driven by
// the request schedule (a pool of distinct queries sized to the target,
// replayed round-robin), and the achieved rate is read back from the
// server's own cache counters.
//
// Usage: serve_throughput [count] [length] [requests] [--json <path>]
// Writes the machine-readable sweep to BENCH_serve.json by default.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/query_spec.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::bench {
namespace {

int Run(int argc, char** argv) {
  const char* json_path = ExtractJsonPath(&argc, argv, "BENCH_serve.json");
  const size_t count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const size_t length =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 128;
  const size_t requests =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 96;
  HYDRA_CHECK_MSG(count > 0 && length > 0 && requests > 0,
                  "count/length/requests must be positive");

  Banner("Serve throughput",
         "daemon QPS vs client concurrency x answer-cache hit ratio",
         "the socket/framing/admission stack adds a small constant per "
         "query; cache hits skip Execute entirely, so QPS rises with the "
         "hit ratio and with concurrency until the cores saturate");

  const auto data = gen::MakeDataset("synth", count, length, 41);
  // The query pool is the largest any target ratio needs; each sweep uses
  // a prefix of it. Same seed-style discipline as every exhibit: the
  // schedule is fully deterministic.
  const gen::Workload pool = gen::CtrlWorkload(data, requests, 42);

  std::shared_ptr<core::SearchMethod> method =
      bench::CreateMethod("DSTree", LeafFor("DSTree", count));
  util::WallTimer build_timer;
  method->Build(data);
  std::printf("dataset: %zu x %zu synth, %zu requests per sweep, k=10, "
              "method DSTree (build %.2fs)\n\n",
              count, length, requests, build_timer.Seconds());

  const core::QuerySpec spec = core::QuerySpec::Knn(10);
  util::JsonWriter json;
  json.BeginObject();
  json.Key("exhibit");
  json.String("serve_throughput");
  json.Key("runs");
  json.BeginArray();

  util::Table table({"clients", "target_hit", "requests", "wall_s", "qps",
                     "achieved_hit"});
  bool all_ok = true;
  for (const size_t clients : {1, 2, 4, 8}) {
    for (const double target_hit : {0.0, 0.5, 0.9}) {
      // A pool of P distinct queries replayed round-robin over R requests
      // misses P times and hits R - P times: P = R * (1 - target).
      const size_t pool_size = std::clamp<size_t>(
          static_cast<size_t>(static_cast<double>(requests) *
                              (1.0 - target_hit)),
          1, pool.queries.size());

      serve::ServerOptions options;
      options.serve_threads = clients;
      options.max_inflight = 2 * clients + 8;
      serve::Server server(options);
      const util::Status started = server.Start(method, &data);
      HYDRA_CHECK_MSG(started.ok(), "serve bench could not bind loopback");

      std::vector<std::string> errors(clients);
      util::WallTimer timer;
      std::vector<std::thread> workers;
      for (size_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          serve::Client client;
          const util::Status connected =
              client.Connect("127.0.0.1", server.port());
          if (!connected.ok()) {
            errors[c] = connected.message();
            return;
          }
          // Client c issues requests [begin, end) of the shared schedule.
          const size_t begin = c * requests / clients;
          const size_t end = (c + 1) * requests / clients;
          for (size_t i = begin; i < end; ++i) {
            serve::QueryRequest request;
            request.spec = spec;
            const core::SeriesView q = pool.queries[i % pool_size];
            request.query.assign(q.begin(), q.end());
            serve::AnswerResponse answer;
            const util::Status s = client.Query(request, &answer, nullptr);
            if (!s.ok()) {
              errors[c] = s.message();
              return;
            }
          }
        });
      }
      for (std::thread& t : workers) t.join();
      const double wall = timer.Seconds();
      const serve::AnswerCache::Counters counters = server.cache_counters();
      server.Shutdown();
      for (size_t c = 0; c < clients; ++c) {
        if (!errors[c].empty()) {
          std::fprintf(stderr, "error: client %zu: %s\n", c,
                       errors[c].c_str());
          all_ok = false;
        }
      }

      const uint64_t lookups = counters.hits + counters.misses;
      const double achieved =
          lookups == 0 ? 0.0
                       : static_cast<double>(counters.hits) /
                             static_cast<double>(lookups);
      const double qps = static_cast<double>(requests) / wall;
      table.AddRow({util::Table::Num(static_cast<double>(clients), 0),
                    util::Table::Num(target_hit, 2),
                    util::Table::Num(static_cast<double>(requests), 0),
                    util::Table::Num(wall, 3), util::Table::Num(qps, 1),
                    util::Table::Num(achieved, 2)});

      json.BeginObject();
      json.Key("clients");
      json.Uint(clients);
      json.Key("target_hit_ratio");
      json.Double(target_hit);
      json.Key("requests");
      json.Uint(requests);
      json.Key("distinct_queries");
      json.Uint(pool_size);
      json.Key("wall_seconds");
      json.Double(wall);
      json.Key("qps");
      json.Double(qps);
      json.Key("cache_hits");
      json.Uint(counters.hits);
      json.Key("cache_misses");
      json.Uint(counters.misses);
      json.Key("achieved_hit_ratio");
      json.Double(achieved);
      json.EndObject();
    }
  }
  table.Print("serve throughput (requests are split across the clients)");
  const size_t hw = util::ThreadPool::HardwareConcurrency();
  if (hw < 2) {
    std::printf("\nnote: this machine exposes %zu core(s); concurrency "
                "rows cannot overlap execution here, so QPS scaling with "
                "clients needs multi-core hardware. (Hit-ratio scaling is "
                "hardware-independent.)\n", hw);
  }

  json.EndArray();
  json.EndObject();
  if (json_path != nullptr) {
    const util::Status written = json.WriteTo(json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.message().c_str());
      return 1;
    }
    std::printf("\nwrote machine-readable sweep to %s\n", json_path);
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace hydra::bench

int main(int argc, char** argv) { return hydra::bench::Run(argc, argv); }
