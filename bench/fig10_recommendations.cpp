// Figure 10: the recommendation decision matrix — best method for
// Idx+Exact10K on the HDD model over the (dataset size x series length)
// grid, distinguishing "in-memory" (small) from "disk-resident" (large)
// collections and short from long series.
#include <vector>

#include "bench_common.h"

namespace hydra::bench {
namespace {

void Run() {
  Banner("Figure 10", "Recommendation matrix (Idx + 10K queries, HDD)",
         "In-memory short series: iSAX2+/VA+file; disk-resident short: "
         "DSTree/VA+file; long series: VA+file/DSTree (ADS+ where random "
         "access is cheap)");

  const std::vector<size_t> sizes = {5000, 20000, 80000};
  const std::vector<size_t> lengths = {128, 256, 1024};
  const auto hdd = io::DiskModel::ScaledHdd();
  const size_t queries = 15;

  util::Table table({"series", "length", "winner", "runner-up"});
  for (const size_t count : sizes) {
    for (const size_t length : lengths) {
      const auto data = gen::RandomWalkDataset(count, length, 87);
      const auto workload = gen::RandWorkload(queries, length, 88);
      std::string best;
      std::string second;
      double best_v = 1e300;
      double second_v = 1e300;
      for (const std::string& name : BestSixNames()) {
        auto method = CreateMethod(name, LeafFor(name, count));
        const MethodRun run = RunMethod(method.get(), data, workload);
        const double v =
            IndexSeconds(run, hdd) + Extrapolated10KSeconds(run, hdd);
        if (v < best_v) {
          second = best;
          second_v = best_v;
          best = name;
          best_v = v;
        } else if (v < second_v) {
          second = name;
          second_v = v;
        }
      }
      table.AddRow({util::Table::Int(static_cast<long long>(count)),
                    util::Table::Int(static_cast<long long>(length)), best,
                    second});
    }
  }
  table.Print("Fig 10: best approach per (size, length), Idx+10K on HDD");
}

}  // namespace
}  // namespace hydra::bench

int main() {
  hydra::bench::Run();
  return 0;
}
