// Figure 9: pruning ratio of the five summarized methods across the seven
// workloads (Synth-Rand, Synth-Ctrl, SALD-Ctrl, Seismic-Ctrl, Astro-Ctrl,
// Deep-Orig, Deep-Ctrl), all at one dataset size.
#include <vector>

#include "bench_common.h"
#include "util/stats.h"

namespace hydra::bench {
namespace {

struct Config {
  std::string workload_name;
  std::string family;
  bool ctrl;  // Ctrl = dataset series + progressive noise; else fresh draws
};

void Run() {
  Banner("Figure 9", "Pruning ratio per method per workload",
         "Synth-Rand prunes best for everyone; Ctrl workloads are more "
         "varied (hard queries prune little); ADS+/VA+file best overall, "
         "then DSTree/iSAX2+, SFA last (huge leaves)");

  const size_t count = 20000;
  const size_t queries = 30;
  const std::vector<Config> configs = {
      {"Synth-Rand", "synth", false},   {"Synth-Ctrl", "synth", true},
      {"SALD-Ctrl", "sald", true},      {"Seismic-Ctrl", "seismic", true},
      {"Astro-Ctrl", "astro", true},    {"Deep-Orig", "deep", false},
      {"Deep-Ctrl", "deep", true},
  };

  util::Table table({"method", "workload", "prune_q25", "prune_median",
                     "prune_q75", "prune_mean"});
  for (const std::string& name : PruningMethodNames()) {
    for (const Config& cfg : configs) {
      const size_t length = cfg.family == "deep" ? 96 : 256;
      const auto data = gen::MakeDataset(cfg.family, count, length, 67);
      gen::Workload workload;
      if (cfg.ctrl) {
        workload = gen::CtrlWorkload(data, queries, 68);
      } else if (cfg.family == "synth") {
        workload = gen::RandWorkload(queries, length, 68);
      } else {
        // "Deep-Orig": independent queries from the same distribution.
        workload.name = "Deep-Orig";
        workload.queries = gen::MakeDataset(cfg.family, queries, length, 69);
      }
      auto method = CreateMethod(name, LeafFor(name, count));
      const MethodRun run = RunMethod(method.get(), data, workload);
      const auto ratios = PruningRatios(run, data.size());
      table.AddRow({name, cfg.workload_name,
                    util::Table::Num(util::Quantile(ratios, 0.25), 3),
                    util::Table::Num(util::Quantile(ratios, 0.5), 3),
                    util::Table::Num(util::Quantile(ratios, 0.75), 3),
                    util::Table::Num(util::Mean(ratios), 3)});
    }
  }
  table.Print("Fig 9: pruning ratio (higher is better), 20K series");
}

}  // namespace
}  // namespace hydra::bench

int main() {
  hydra::bench::Run();
  return 0;
}
