// Batch-engine throughput scenario: queries/sec versus worker threads for
// one optimized scan and two index methods, sweeping 1..max(4, hardware)
// threads over a fixed workload. This exhibit is ours, not the paper's —
// the paper runs every query serially under identical conditions; the
// ROADMAP's production north-star needs concurrent query answering on top
// of the same methods (cf. "Data Series Indexing Gone Parallel").
// Usage: throughput_scaling [--json <path>] — the optional flag writes
// the sweep as machine-readable JSON next to the printed table.
#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hydra::bench {
namespace {

int Run(int argc, char** argv) {
  const char* json_path = ExtractJsonPath(&argc, argv, nullptr);
  Banner("Batch throughput",
         "queries/sec vs worker threads (batch engine, shared index)",
         "near-linear scaling while cores last — batch answers are "
         "bit-identical to the serial path, so speedup is free accuracy-"
         "wise; ADS+ is excluded (adaptive, serial-only)");

  const size_t count = 20000;
  const size_t length = 256;
  const size_t queries = 96;
  const auto data = gen::MakeDataset("synth", count, length, 21);
  const gen::Workload workload = gen::CtrlWorkload(data, queries, 22);

  const size_t hw = util::ThreadPool::HardwareConcurrency();
  std::printf("dataset: %zu x %zu synth, %zu queries, k=1; "
              "hardware_concurrency=%zu\n\n", count, length, queries, hw);

  std::vector<size_t> sweep;
  for (size_t t = 1; t <= std::max<size_t>(4, hw); t *= 2) sweep.push_back(t);

  util::JsonWriter json;
  json.BeginObject();
  json.Key("exhibit");
  json.String("throughput_scaling");
  json.Key("runs");
  json.BeginArray();

  util::Table table(
      {"method", "threads", "wall_s", "queries_per_s", "speedup"});
  for (const std::string name : {"UCR-Suite", "DSTree", "VA+file"}) {
    auto method = CreateMethod(name, LeafFor(name, count));
    method->Build(data);
    // Warm-up pass so first-touch costs (thread-local scratch, page
    // faults) don't pollute the 1-thread baseline.
    (void)SearchKnnBatch(method.get(), workload, /*k=*/1, /*threads=*/1);
    double serial_wall = 0.0;
    for (const size_t threads : sweep) {
      util::WallTimer timer;
      const core::BatchKnnResult batch =
          SearchKnnBatch(method.get(), workload, /*k=*/1, threads);
      const double wall = timer.Seconds();
      if (threads == 1) serial_wall = wall;
      const double qps = static_cast<double>(batch.queries.size()) / wall;
      table.AddRow({name, util::Table::Num(static_cast<double>(threads), 0),
                    util::Table::Num(wall, 3), util::Table::Num(qps, 1),
                    util::Table::Num(serial_wall / wall, 2)});
      json.BeginObject();
      json.Key("method");
      json.String(name);
      json.Key("threads");
      json.Uint(threads);
      json.Key("threads_used");
      json.Uint(batch.threads_used);
      json.Key("queries");
      json.Uint(batch.queries.size());
      json.Key("wall_seconds");
      json.Double(wall);
      json.Key("queries_per_second");
      json.Double(qps);
      json.EndObject();
    }
  }
  table.Print("batch throughput (speedup = wall_1thread / wall_Nthreads)");
  if (hw < 4) {
    std::printf("\nnote: this machine exposes %zu core(s); thread counts "
                "above that measure oversubscription, not scaling.\n", hw);
  }

  json.EndArray();
  json.EndObject();
  if (json_path != nullptr) {
    const util::Status written = json.WriteTo(json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.message().c_str());
      return 1;
    }
    std::printf("\nwrote machine-readable sweep to %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace hydra::bench

int main(int argc, char** argv) { return hydra::bench::Run(argc, argv); }
