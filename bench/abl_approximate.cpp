// Ablation: ng-approximate vs exact search (Definition 7 of the paper).
// The approximate answer visits one leaf; this bench measures how close it
// gets (distance ratio to the true NN) and how much work it saves, per
// method and per query difficulty — the trade-off behind the paper's
// future-work plan to evaluate approximate methods.
#include <cmath>
#include <vector>

#include "bench_common.h"
#include "core/distance.h"

namespace hydra::bench {
namespace {

void Run() {
  Banner("Ablation", "ng-approximate search vs exact (one-leaf descent)",
         "Approximate answers are near-optimal on easy queries and degrade "
         "on hard ones, at a small fraction of the exact cost");

  const size_t count = 20000;
  const size_t length = 256;
  const auto data = gen::RandomWalkDataset(count, length, 127);

  util::Table table({"method", "difficulty", "mean_dist_ratio",
                     "exact_examined", "approx_examined"});
  for (const std::string name : {"ADS+", "DSTree", "iSAX2+", "SFA"}) {
    for (const bool easy : {true, false}) {
      const auto workload =
          easy ? gen::CtrlWorkload(data, 20, 128, 0.02, 0.1)
               : gen::CtrlWorkload(data, 20, 128, 0.8, 1.0);
      auto method = CreateMethod(name, DefaultLeaf(count));
      method->Build(data);
      double ratio_sum = 0.0;
      int64_t exact_examined = 0;
      int64_t approx_examined = 0;
      for (size_t q = 0; q < workload.queries.size(); ++q) {
        const auto exact =
            method->Execute(workload.queries[q], core::QuerySpec::Knn(1));
        const auto approx = method->Execute(workload.queries[q],
                                            core::QuerySpec::NgApprox(1));
        exact_examined += exact.stats.raw_series_examined;
        approx_examined += approx.stats.raw_series_examined;
        const double d_exact = std::sqrt(exact.neighbors[0].dist_sq);
        const double d_approx = std::sqrt(approx.neighbors[0].dist_sq);
        ratio_sum += d_exact <= 1e-9 ? 1.0 : d_approx / d_exact;
      }
      const double n = static_cast<double>(workload.queries.size());
      table.AddRow({name, easy ? "easy" : "hard",
                    util::Table::Num(ratio_sum / n, 3),
                    util::Table::Int(exact_examined),
                    util::Table::Int(approx_examined)});
    }
  }
  table.Print("approximate quality and cost (20K random walks)");
}

}  // namespace
}  // namespace hydra::bench

int main() {
  hydra::bench::Run();
  return 0;
}
