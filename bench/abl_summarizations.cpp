// Ablation: summarization quality at an equal budget of 16 dimensions —
// mean per-pair lower-bound tightness of PAA, truncated DFT, DHWT prefix,
// full-resolution iSAX, and EAPCA, per dataset family. This quantifies the
// paper's Section 5 point that summarization quality alone does not decide
// performance, but drives pruning.
#include <cmath>
#include <vector>

#include "bench_common.h"
#include "core/distance.h"
#include "transform/dft.h"
#include "transform/eapca.h"
#include "transform/haar.h"
#include "transform/isax.h"
#include "transform/paa.h"

namespace hydra::bench {
namespace {

constexpr size_t kBudget = 16;  // dimensions/coefficients, paper default

double MeanTightness(const core::Dataset& data, const core::Dataset& queries,
                     const std::string& kind) {
  const size_t n = data.length();
  double sum = 0.0;
  size_t pairs = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto query = queries[q];
    const auto q_paa = transform::Paa(query, kBudget);
    const auto q_dft = transform::PackedRealDft(query, kBudget, true);
    const auto q_haar = transform::HaarTransform(query);
    const auto seg = transform::Segmentation::Uniform(n, kBudget / 2);
    const auto q_eapca = transform::ComputeEapca(query, seg);
    for (size_t i = 0; i < data.size(); ++i) {
      const double exact = core::SquaredEuclidean(query, data[i]);
      if (exact <= 0.0) continue;
      double lb = 0.0;
      if (kind == "PAA") {
        lb = transform::PaaLowerBoundSq(q_paa, transform::Paa(data[i], kBudget),
                                        n / kBudget);
      } else if (kind == "DFT") {
        const auto c = transform::PackedRealDft(data[i], kBudget, true);
        for (size_t d = 0; d < c.size(); ++d) {
          lb += (q_dft[d] - c[d]) * (q_dft[d] - c[d]);
        }
      } else if (kind == "DHWT") {
        const auto c = transform::HaarTransform(data[i]);
        for (size_t d = 0; d < kBudget; ++d) {
          lb += (q_haar[d] - c[d]) * (q_haar[d] - c[d]);
        }
      } else if (kind == "iSAX") {
        const auto word = transform::FullResolutionWord(
            transform::Paa(data[i], kBudget));
        lb = transform::IsaxMinDistSq(q_paa, word, n / kBudget);
      } else if (kind == "EAPCA") {
        // mean+stddev per segment: 2 values x 8 segments = 16 dimensions.
        lb = transform::EapcaPointLbSq(q_eapca,
                                       transform::ComputeEapca(data[i], seg),
                                       seg);
      }
      sum += std::sqrt(lb / exact);
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

void Run() {
  Banner("Ablation", "Summarization quality at a 16-dimension budget",
         "Smooth families (SALD, random walk) are summarized well by "
         "every scheme; deep-like vectors poorly by all; quantized iSAX "
         "is looser than its PAA base; EAPCA competitive with PAA");

  const size_t count = 400;
  const size_t queries = 10;
  util::Table table(
      {"family", "PAA", "DFT", "DHWT", "iSAX", "EAPCA"});
  for (const std::string family :
       {"synth", "seismic", "astro", "sald", "deep"}) {
    const size_t length = family == "deep" ? 96 : 256;
    const auto data = gen::MakeDataset(family, count, length, 97);
    const auto probe = gen::MakeDataset(family, queries, length, 98);
    std::vector<std::string> row = {family};
    for (const std::string kind : {"PAA", "DFT", "DHWT", "iSAX", "EAPCA"}) {
      row.push_back(util::Table::Num(MeanTightness(data, probe, kind), 4));
    }
    table.AddRow(row);
  }
  table.Print("Mean pairwise lower-bound tightness (higher = tighter)");
}

}  // namespace
}  // namespace hydra::bench

int main() {
  hydra::bench::Run();
  return 0;
}
