// Ablation: the paper applies three optimizations to all methods — no
// square root, early abandoning, reordered early abandoning. This
// microbenchmark quantifies each on z-normalized random walks with a
// realistic pruning bound.
#include <benchmark/benchmark.h>

#include "core/distance.h"
#include "core/method.h"
#include "gen/random_walk.h"

namespace hydra {
namespace {

const core::Dataset& Data() {
  static const core::Dataset* data =
      new core::Dataset(gen::RandomWalkDataset(4000, 256, 1001));
  return *data;
}

const core::Dataset& Queries() {
  static const core::Dataset* q =
      new core::Dataset(gen::RandomWalkDataset(8, 256, 1002));
  return *q;
}

// A realistic bound: the 1-NN distance of each query (the steady-state bsf).
double BoundFor(core::SeriesView query) {
  return core::BruteForceKnn(Data(), query, 1).front().dist_sq;
}

void BM_PlainSquaredEuclidean(benchmark::State& state) {
  const auto& data = Data();
  const auto& queries = Queries();
  size_t q = 0;
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
      acc += core::SquaredEuclidean(queries[q % queries.size()], data[i]);
    }
    benchmark::DoNotOptimize(acc);
    ++q;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_PlainSquaredEuclidean);

void BM_EarlyAbandon(benchmark::State& state) {
  const auto& data = Data();
  const auto& queries = Queries();
  std::vector<double> bounds;
  for (size_t i = 0; i < queries.size(); ++i) {
    bounds.push_back(BoundFor(queries[i]) * 1.1);
  }
  size_t q = 0;
  for (auto _ : state) {
    double acc = 0.0;
    const size_t qi = q % queries.size();
    for (size_t i = 0; i < data.size(); ++i) {
      acc += core::SquaredEuclideanEarlyAbandon(queries[qi], data[i],
                                                bounds[qi]);
    }
    benchmark::DoNotOptimize(acc);
    ++q;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_EarlyAbandon);

void BM_ReorderedEarlyAbandon(benchmark::State& state) {
  const auto& data = Data();
  const auto& queries = Queries();
  std::vector<core::QueryOrder> orders;
  std::vector<double> bounds;
  for (size_t i = 0; i < queries.size(); ++i) {
    orders.emplace_back(queries[i]);
    bounds.push_back(BoundFor(queries[i]) * 1.1);
  }
  size_t q = 0;
  for (auto _ : state) {
    double acc = 0.0;
    const size_t qi = q % queries.size();
    for (size_t i = 0; i < data.size(); ++i) {
      acc += orders[qi].Distance(data[i], bounds[qi]);
    }
    benchmark::DoNotOptimize(acc);
    ++q;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_ReorderedEarlyAbandon);

}  // namespace
}  // namespace hydra

BENCHMARK_MAIN();
