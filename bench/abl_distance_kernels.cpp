// Ablation: the paper applies three optimizations to all methods — no
// square root, early abandoning, reordered early abandoning. This exhibit
// quantifies each, and since the distance layer now dispatches to SIMD
// kernel sets, it sweeps every set the CPU supports (scalar, portable,
// avx2, avx512) against the scalar reference: throughput per op and
// series length, speedup versus scalar, and an inline conformance check
// (bit identity for order-preserving sets, the documented 16*n*2^-53
// relative tolerance otherwise).
//
// Usage: abl_distance_kernels [count] [reps] [--json <path>]
// Writes the machine-readable sweep to BENCH_kernels.json by default.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/simd/kernels.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::bench {
namespace {

using core::Value;
using core::simd::KernelSet;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Workbench {
  explicit Workbench(core::Dataset d) : data(std::move(d)) {}
  core::Dataset data;
  size_t length = 0;
  std::vector<Value> query;
  std::vector<Value> query_ordered;
  std::vector<uint32_t> order;
  double bound = 0.0;  // steady-state bsf: 1.1x the 1-NN distance
};

Workbench MakeWorkbench(size_t count, size_t length, uint64_t seed) {
  Workbench w(gen::RandomWalkDataset(count, length, seed));
  w.length = length;
  const core::Dataset q = gen::RandomWalkDataset(1, length, seed + 1);
  w.query.assign(q[0].data(), q[0].data() + length);

  w.order.resize(length);
  std::iota(w.order.begin(), w.order.end(), 0u);
  std::sort(w.order.begin(), w.order.end(), [&](uint32_t a, uint32_t b) {
    return std::fabs(w.query[a]) > std::fabs(w.query[b]);
  });
  w.query_ordered.resize(length);
  for (size_t i = 0; i < length; ++i) {
    w.query_ordered[i] = w.query[w.order[i]];
  }

  const auto& scalar = core::simd::ScalarKernels();
  double best = kInf;
  for (size_t i = 0; i < w.data.size(); ++i) {
    best = std::min(best,
                    scalar.euclidean_sq(w.query.data(), w.data[i].data(),
                                        length));
  }
  w.bound = best * 1.1;
  return w;
}

double RunOp(const KernelSet& set, const std::string& op, const Workbench& w) {
  double acc = 0.0;
  const size_t n = w.length;
  if (op == "euclidean") {
    for (size_t i = 0; i < w.data.size(); ++i) {
      acc += set.euclidean_sq(w.query.data(), w.data[i].data(), n);
    }
  } else if (op == "early_abandon") {
    for (size_t i = 0; i < w.data.size(); ++i) {
      acc += set.euclidean_sq_abandon(w.query.data(), w.data[i].data(), n,
                                      w.bound);
    }
  } else {
    for (size_t i = 0; i < w.data.size(); ++i) {
      acc += set.euclidean_sq_reordered(w.query_ordered.data(),
                                        w.data[i].data(), w.order.data(), n,
                                        w.bound);
    }
  }
  return acc;
}

// Inline conformance: the full (non-abandoning) distance of every series
// under `set` against the scalar reference. Abandoning ops are only
// bound-comparable, so conformance is checked on the plain op.
bool Conforms(const KernelSet& set, const Workbench& w) {
  const auto& scalar = core::simd::ScalarKernels();
  for (size_t i = 0; i < w.data.size(); ++i) {
    const double want =
        scalar.euclidean_sq(w.query.data(), w.data[i].data(), w.length);
    const double got =
        set.euclidean_sq(w.query.data(), w.data[i].data(), w.length);
    if (set.raw_order_preserved) {
      if (got != want) return false;
    } else {
      const double tol =
          16.0 * static_cast<double>(w.length) * std::ldexp(1.0, -53);
      if (std::fabs(got - want) > std::fabs(want) * tol) return false;
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  const char* json_path = ExtractJsonPath(&argc, argv, "BENCH_kernels.json");
  const size_t count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  const size_t reps = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20;
  HYDRA_CHECK_MSG(count > 0 && reps > 0, "count/reps must be positive");

  Banner("Distance-kernel ablation",
         "series/s per kernel set, op, and length; speedup vs scalar",
         "early abandoning and reordering dominate on long series; SIMD "
         "sets add a further multiple on the plain distance, shrinking "
         "(by design) on abandoning ops that cut most of the work");

  const auto sets = core::simd::SupportedKernelSets();
  std::printf("kernel sets compiled in and supported here:");
  for (const KernelSet* s : sets) std::printf(" %s", s->name);
  std::printf("\ndataset: %zu random walks per length, %zu reps\n\n", count,
              reps);

  util::JsonWriter json;
  json.BeginObject();
  json.Key("exhibit");
  json.String("distance_kernels");
  json.Key("series_count");
  json.Uint(count);
  json.Key("runs");
  json.BeginArray();

  util::Table table(
      {"set", "op", "length", "series_per_s", "vs_scalar", "conforms"});
  bool all_conform = true;
  for (const size_t length : {64u, 256u, 1024u}) {
    const Workbench w = MakeWorkbench(count, length, 1000 + length);
    for (const char* op : {"euclidean", "early_abandon", "reordered_abandon"}) {
      double scalar_rate = 0.0;
      for (const KernelSet* set : sets) {
        // One warm-up sweep, then timed reps.
        double sink = RunOp(*set, op, w);
        util::WallTimer timer;
        for (size_t r = 0; r < reps; ++r) sink += RunOp(*set, op, w);
        const double secs = timer.Seconds();
        HYDRA_CHECK(std::isfinite(sink));
        const double rate =
            static_cast<double>(reps) * static_cast<double>(count) / secs;
        if (std::strcmp(set->name, "scalar") == 0) scalar_rate = rate;
        const bool ok = Conforms(*set, w);
        all_conform = all_conform && ok;

        table.AddRow({set->name, op,
                      util::Table::Num(static_cast<double>(length), 0),
                      util::Table::Num(rate, 0),
                      util::Table::Num(rate / scalar_rate, 2),
                      ok ? "yes" : "NO"});
        json.BeginObject();
        json.Key("set");
        json.String(set->name);
        json.Key("op");
        json.String(op);
        json.Key("length");
        json.Uint(length);
        json.Key("series_per_second");
        json.Double(rate);
        json.Key("speedup_vs_scalar");
        json.Double(rate / scalar_rate);
        json.Key("raw_order_preserved");
        json.Bool(set->raw_order_preserved);
        json.Key("conforms");
        json.Bool(ok);
        json.EndObject();
      }
    }
  }
  table.Print("distance kernels (vs_scalar = rate / scalar rate, same op)");
  if (sets.back() == &core::simd::ScalarKernels() ||
      std::strcmp(sets.back()->name, "portable") == 0) {
    std::printf("\nnote: this machine exposes no AVX2/AVX-512, so the SIMD "
                "rows above are absent and speedups reflect the portable "
                "set only — run on wider hardware for the full exhibit.\n");
  }

  json.EndArray();
  json.EndObject();
  if (json_path != nullptr) {
    const util::Status written = json.WriteTo(json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.message().c_str());
      return 1;
    }
    std::printf("\nwrote machine-readable sweep to %s\n", json_path);
  }
  // A conformance failure fails the run *after* the table and JSON are
  // out, so the offending row is visible instead of dying mid-sweep.
  if (!all_conform) {
    std::fprintf(stderr, "error: a kernel diverged from the scalar "
                         "reference (see the 'conforms' column)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hydra::bench

int main(int argc, char** argv) { return hydra::bench::Run(argc, argv); }
