// Shared configuration for the figure/table bench binaries. The paper's
// datasets are 25GB-1TB; these benches run laptop-scale datasets through
// the instrumented I/O ledger and report modeled HDD/SSD times alongside
// measured CPU (see DESIGN.md, "Substitutions").
#ifndef HYDRA_BENCH_BENCH_COMMON_H_
#define HYDRA_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/harness.h"
#include "bench/registry.h"
#include "gen/random_walk.h"
#include "gen/realistic.h"
#include "gen/workload.h"
#include "io/disk_model.h"
#include "util/json.h"
#include "util/table.h"

namespace hydra::bench {

/// Leaf threshold heuristic mirroring the paper's tuned ratios (leaf size
/// grows with the collection; SFA's optimal leaf is ~10x the others').
inline size_t DefaultLeaf(size_t count) {
  return std::clamp<size_t>(count / 64, 64, 1024);
}
inline size_t SfaLeaf(size_t count) { return DefaultLeaf(count) * 16; }

inline size_t LeafFor(const std::string& method, size_t count) {
  return method == "SFA" ? SfaLeaf(count) : DefaultLeaf(count);
}

/// Prints the standard bench banner.
inline void Banner(const char* exhibit, const char* what,
                   const char* paper_expectation) {
  std::printf("=====================================================\n");
  std::printf("%s — %s\n", exhibit, what);
  std::printf("Paper expectation: %s\n", paper_expectation);
  std::printf("=====================================================\n");
}

/// Extracts a `--json <path>` pair from (argc, argv), returning the path
/// (or `default_path` when the flag is absent; pass nullptr for "no JSON
/// unless asked"). The two tokens are removed from argv so the bench's
/// positional argument parsing stays untouched. A valueless trailing
/// `--json` exits 1 with an error — silently dropping it would either
/// skip the JSON output or leave the flag to be misparsed as a
/// positional argument.
inline const char* ExtractJsonPath(int* argc, char** argv,
                                   const char* default_path) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    if (i + 1 >= *argc) {
      std::fprintf(stderr, "error: --json needs a path\n");
      std::exit(1);
    }
    const char* path = argv[i + 1];
    for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
    *argc -= 2;
    return path;
  }
  return default_path;
}

/// Serializes one measured run as a flat JSON record: identity (method,
/// dataset shape, shards, threads), measured build/load/query seconds,
/// modeled HDD/SSD query seconds, and the summed query ledger — the
/// machine-readable counterpart of every bench table row, so perf can be
/// tracked across commits without scraping stdout.
inline void JsonRunRecord(util::JsonWriter* json, const MethodRun& run,
                          size_t shards, size_t threads,
                          const core::Dataset& data,
                          const io::DiskModel& hdd,
                          const io::DiskModel& ssd) {
  core::SearchStats total;
  for (const core::SearchStats& q : run.queries) total.Add(q);
  json->BeginObject();
  json->Key("method");
  json->String(run.method);
  json->Key("dataset_series");
  json->Uint(data.size());
  json->Key("series_length");
  json->Uint(data.length());
  json->Key("shards");
  json->Uint(shards);
  json->Key("threads");
  json->Uint(threads);
  json->Key("queries");
  json->Uint(run.queries.size());
  json->Key("build_cpu_seconds");
  json->Double(run.build.cpu_seconds);
  json->Key("load_seconds");
  json->Double(run.build.load_seconds);
  json->Key("query_cpu_seconds");
  json->Double(total.cpu_seconds);
  json->Key("query_hdd_seconds");
  json->Double(ExactWorkloadSeconds(run, hdd));
  json->Key("query_ssd_seconds");
  json->Double(ExactWorkloadSeconds(run, ssd));
  json->Key("stats");
  json->BeginObject();
  json->Key("distance_computations");
  json->Int(total.distance_computations);
  json->Key("raw_series_examined");
  json->Int(total.raw_series_examined);
  json->Key("lower_bound_computations");
  json->Int(total.lower_bound_computations);
  json->Key("nodes_visited");
  json->Int(total.nodes_visited);
  json->Key("sequential_reads");
  json->Int(total.sequential_reads);
  json->Key("random_seeks");
  json->Int(total.random_seeks);
  json->Key("bytes_read");
  json->Int(total.bytes_read);
  json->EndObject();
  json->EndObject();
}

}  // namespace hydra::bench

#endif  // HYDRA_BENCH_BENCH_COMMON_H_
