// Shared configuration for the figure/table bench binaries. The paper's
// datasets are 25GB-1TB; these benches run laptop-scale datasets through
// the instrumented I/O ledger and report modeled HDD/SSD times alongside
// measured CPU (see DESIGN.md, "Substitutions").
#ifndef HYDRA_BENCH_BENCH_COMMON_H_
#define HYDRA_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "bench/registry.h"
#include "gen/random_walk.h"
#include "gen/realistic.h"
#include "gen/workload.h"
#include "io/disk_model.h"
#include "util/table.h"

namespace hydra::bench {

/// Leaf threshold heuristic mirroring the paper's tuned ratios (leaf size
/// grows with the collection; SFA's optimal leaf is ~10x the others').
inline size_t DefaultLeaf(size_t count) {
  return std::clamp<size_t>(count / 64, 64, 1024);
}
inline size_t SfaLeaf(size_t count) { return DefaultLeaf(count) * 16; }

inline size_t LeafFor(const std::string& method, size_t count) {
  return method == "SFA" ? SfaLeaf(count) : DefaultLeaf(count);
}

/// Prints the standard bench banner.
inline void Banner(const char* exhibit, const char* what,
                   const char* paper_expectation) {
  std::printf("=====================================================\n");
  std::printf("%s — %s\n", exhibit, what);
  std::printf("Paper expectation: %s\n", paper_expectation);
  std::printf("=====================================================\n");
}

}  // namespace hydra::bench

#endif  // HYDRA_BENCH_BENCH_COMMON_H_
