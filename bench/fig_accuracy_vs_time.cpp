// Accuracy-versus-time exhibit (companion study "Return of the Lernaean
// Hydra", Figures 5-7): sweep epsilon over the epsilon-capable methods and
// report recall@k, the actual approximation error, and time against the
// exact (epsilon = 0) search — the headline tradeoff that makes one index
// fleet serve both interactive (approximate) and analytic (exact) traffic.
//
// Usage: fig_accuracy_vs_time [count] [length] [queries] [k]
// Defaults reproduce the laptop-scale exhibit; CI runs a smoke config.
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "core/method.h"
#include "core/query_spec.h"

namespace hydra::bench {
namespace {

void Run(size_t count, size_t length, size_t queries, size_t k) {
  Banner("Accuracy vs time",
         "recall@k / approximation error / time as epsilon grows",
         "epsilon-approximate answers are close to exact for small epsilon "
         "and get orders of magnitude cheaper as epsilon grows; ng is the "
         "cheap no-guarantee floor");

  const auto data = gen::RandomWalkDataset(count, length, 4242);
  const auto workload = gen::CtrlWorkload(data, queries, 4243);
  const auto ssd = io::DiskModel::Ssd();

  // Ground truth once per query.
  std::vector<std::vector<core::Neighbor>> truth(workload.queries.size());
  for (size_t q = 0; q < workload.queries.size(); ++q) {
    truth[q] = core::BruteForceKnn(data, workload.queries[q], k);
  }

  const std::vector<double> epsilons = {0.0, 0.1, 0.5, 1.0, 2.0, 5.0};
  util::Table table({"method", "mode", "recall@k", "approx_err",
                     "raw_frac", "ssd_s_per_q", "speedup_vs_exact"});
  for (const std::string& name : EpsilonCapableNames()) {
    auto shared = CreateMethod(name, LeafFor(name, count));
    shared->Build(data);
    const core::MethodTraits traits = shared->traits();
    // Adaptive methods (ADS+, the one method whose queries mutate the
    // index — the same property that forbids concurrent queries) get a
    // fresh build per sweep: reusing one instance would let every later
    // row ride on the adaptation the exact baseline paid for, overstating
    // the approximate speedups. Immutable methods build once.
    const bool adaptive = !traits.concurrent_queries;

    auto sweep = [&](const std::string& label, const core::QuerySpec& spec,
                     double exact_seconds) -> double {
      std::unique_ptr<core::SearchMethod> fresh;
      if (adaptive) {
        fresh = CreateMethod(name, LeafFor(name, count));
        fresh->Build(data);
      }
      core::SearchMethod* method = adaptive ? fresh.get() : shared.get();
      double recall = 0.0;
      double err = 0.0;
      double seconds = 0.0;
      int64_t raw = 0;
      for (size_t q = 0; q < workload.queries.size(); ++q) {
        const core::QueryResult r =
            method->Execute(workload.queries[q], spec);
        recall += core::RecallAtK(r.neighbors, truth[q], k);
        err += core::ApproximationError(r.neighbors, truth[q]);
        seconds += ssd.QueryTotalSeconds(r.stats);
        raw += r.stats.raw_series_examined;
      }
      const double n = static_cast<double>(workload.queries.size());
      table.AddRow(
          {name, label, util::Table::Num(recall / n, 3),
           util::Table::Num(err / n, 3),
           util::Table::Num(static_cast<double>(raw) /
                                (n * static_cast<double>(data.size())),
                            4),
           util::Table::Num(seconds / n, 5),
           exact_seconds > 0.0
               ? util::Table::Num(exact_seconds / (seconds / n), 1)
               : std::string("1.0")});
      return seconds / n;
    };

    const double exact_seconds =
        sweep("exact", core::QuerySpec::Knn(k), 0.0);
    for (const double eps : epsilons) {
      if (eps == 0.0) continue;  // identical to exact by contract
      sweep("eps=" + util::Table::Num(eps, 1),
            core::QuerySpec::Epsilon(k, eps), exact_seconds);
    }
    if (traits.supports_delta_epsilon) {
      sweep("d-eps=1.0,d=0.1", core::QuerySpec::DeltaEpsilon(k, 1.0, 0.1),
            exact_seconds);
    }
    if (traits.supports_ng) {
      sweep("ng", core::QuerySpec::NgApprox(k), exact_seconds);
    }
  }
  table.Print("Accuracy vs time: recall@" + std::to_string(k) +
              ", approximation error, modeled SSD seconds per query");
}

}  // namespace
}  // namespace hydra::bench

int main(int argc, char** argv) {
  size_t count = 20000;
  size_t length = 256;
  size_t queries = 30;
  size_t k = 10;
  if (argc > 1) count = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) length = static_cast<size_t>(std::atoll(argv[2]));
  if (argc > 3) queries = static_cast<size_t>(std::atoll(argv[3]));
  if (argc > 4) k = static_cast<size_t>(std::atoll(argv[4]));
  hydra::bench::Run(count, length, queries, k);
  return 0;
}
