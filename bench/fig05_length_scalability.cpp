// Figure 5: scalability with increasing data series lengths at a fixed
// collection volume (the paper fixes 100GB and 16 summary dimensions).
// Reports Idx+Exact100 and Idx+Exact10K modeled HDD times.
#include <vector>

#include "bench_common.h"

namespace hydra::bench {
namespace {

void Run() {
  Banner("Figure 5", "Scalability with increasing series lengths",
         "ADS+ and VA+file costs plummet with longer series (skips merge "
         "into fewer, larger jumps); other methods stay roughly flat");

  const std::vector<size_t> lengths = {128, 256, 512, 1024, 2048};
  const size_t fixed_volume = 40000 * 256;  // total floats kept constant
  const auto hdd = io::DiskModel::ScaledHdd();
  const size_t queries = 15;

  util::Table t100({"method", "length", "idx+exact100_s"});
  util::Table t10k({"method", "length", "idx+10K_s"});
  for (const std::string& name : BestSixNames()) {
    for (const size_t length : lengths) {
      const size_t count = fixed_volume / length;
      const auto data = gen::RandomWalkDataset(count, length, 27);
      const auto workload = gen::RandWorkload(queries, length, 28);
      auto method = CreateMethod(name, LeafFor(name, count));
      const MethodRun run = RunMethod(method.get(), data, workload);
      const double idx = IndexSeconds(run, hdd);
      t100.AddRow({name, util::Table::Int(static_cast<long long>(length)),
                   util::Table::Num(idx + Exact100Seconds(run, hdd), 3)});
      t10k.AddRow({name, util::Table::Int(static_cast<long long>(length)),
                   util::Table::Num(idx + Extrapolated10KSeconds(run, hdd),
                                    1)});
    }
  }
  t100.Print("Fig 5a: Idx+Exact100 vs length (HDD model)");
  t10k.Print("Fig 5b: Idx+Exact10K (extrapolated) vs length (HDD model)");
}

}  // namespace
}  // namespace hydra::bench

int main() {
  hydra::bench::Run();
  return 0;
}
