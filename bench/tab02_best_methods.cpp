// Table 2: the best method per {dataset x scenario} on both disk models,
// including the Easy-20 / Hard-20 scenarios (easiest/hardest queries by
// mean pruning ratio across methods).
#include <map>
#include <vector>

#include "bench_common.h"

namespace hydra::bench {
namespace {

struct DatasetSpec {
  std::string label;
  std::string family;
  size_t count;
  size_t length;
};

void Run() {
  Banner("Table 2", "Best method per dataset and scenario",
         "HDD: ADS+ wins Idx; DSTree dominates large/easy; UCR-Suite wins "
         "hard queries on poorly-summarizable data (Astro/Deep1B). "
         "SSD: VA+file/iSAX2+ take over most scenarios");

  const std::vector<DatasetSpec> specs = {
      {"Small", "synth", 8000, 256},  {"Large", "synth", 40000, 256},
      {"Astro", "astro", 20000, 256}, {"Deep1B", "deep", 20000, 96},
      {"SALD", "sald", 20000, 128},   {"Seismic", "seismic", 20000, 256},
  };
  const size_t queries = 30;
  const size_t subset = 6;  // "Easy-20"/"Hard-20" scaled to 30 queries

  for (const io::DiskModel& disk :
       {io::DiskModel::ScaledHdd(), io::DiskModel::Ssd()}) {
    util::Table table({"dataset", "Idx", "Exact", "Idx+Exact", "Idx+10K",
                       "Easy-20", "Hard-20"});
    for (const DatasetSpec& spec : specs) {
      const auto data =
          gen::MakeDataset(spec.family, spec.count, spec.length, 77);
      const auto workload = gen::CtrlWorkload(data, queries, 78);

      std::vector<MethodRun> runs;
      for (const std::string& name : BestSixNames()) {
        auto method = CreateMethod(name, LeafFor(name, spec.count));
        runs.push_back(RunMethod(method.get(), data, workload));
      }
      const auto easy = EasiestQueries(runs, data.size(), subset);
      const auto hard = HardestQueries(runs, data.size(), subset);

      std::string best[6];
      double best_v[6] = {1e300, 1e300, 1e300, 1e300, 1e300, 1e300};
      for (const MethodRun& run : runs) {
        const double idx = IndexSeconds(run, disk);
        const double exact100 = Exact100Seconds(run, disk);
        const double v[6] = {idx,
                             exact100,
                             idx + exact100,
                             idx + Extrapolated10KSeconds(run, disk),
                             MeanSecondsOver(run, disk, easy),
                             MeanSecondsOver(run, disk, hard)};
        for (int i = 0; i < 6; ++i) {
          // The scan builds nothing; it does not compete in Idx.
          if (i == 0 && run.method == "UCR-Suite") continue;
          if (v[i] < best_v[i]) {
            best_v[i] = v[i];
            best[i] = run.method;
          }
        }
      }
      table.AddRow({spec.label, best[0], best[1], best[2], best[3], best[4],
                    best[5]});
    }
    table.Print("Table 2 (" + disk.name + " model)");
  }
}

}  // namespace
}  // namespace hydra::bench

int main() {
  hydra::bench::Run();
  return 0;
}
