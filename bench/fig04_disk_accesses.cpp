// Figure 4: number of sequential and random disk accesses over the query
// workload, (a,c) for increasing dataset sizes at length 256 and (b,d) for
// increasing lengths at a fixed collection volume.
#include <vector>

#include "bench_common.h"
#include "util/stats.h"

namespace hydra::bench {
namespace {

void AccessTable(const std::vector<std::string>& methods, bool vary_size) {
  const size_t queries = 15;
  const std::vector<size_t> sizes = {10000, 20000, 40000};
  const std::vector<size_t> lengths = {128, 256, 512, 1024};
  const size_t fixed_volume = 40000 * 256;  // floats, like the paper's 100GB

  util::Table seq_table({"method", vary_size ? "series" : "length",
                         "seq_min", "seq_median", "seq_max"});
  util::Table rnd_table({"method", vary_size ? "series" : "length",
                         "rnd_min", "rnd_median", "rnd_max"});
  for (const std::string& name : methods) {
    for (const size_t x : vary_size ? sizes : lengths) {
      const size_t count = vary_size ? x : fixed_volume / x;
      const size_t length = vary_size ? 256 : x;
      const auto data = gen::RandomWalkDataset(count, length, 17);
      const auto workload = gen::RandWorkload(queries, length, 18);
      auto method = CreateMethod(name, LeafFor(name, count));
      const MethodRun run = RunMethod(method.get(), data, workload);
      std::vector<double> seq;
      std::vector<double> rnd;
      for (const auto& q : run.queries) {
        seq.push_back(static_cast<double>(q.sequential_reads));
        rnd.push_back(static_cast<double>(q.random_seeks));
      }
      const auto s = util::Summarize(seq);
      const auto r = util::Summarize(rnd);
      seq_table.AddRow({name, util::Table::Int(static_cast<long long>(x)),
                        util::Table::Int(static_cast<long long>(s.min)),
                        util::Table::Int(static_cast<long long>(s.median)),
                        util::Table::Int(static_cast<long long>(s.max))});
      rnd_table.AddRow({name, util::Table::Int(static_cast<long long>(x)),
                        util::Table::Int(static_cast<long long>(r.min)),
                        util::Table::Int(static_cast<long long>(r.median)),
                        util::Table::Int(static_cast<long long>(r.max))});
    }
  }
  seq_table.Print(vary_size ? "Fig 4a: sequential accesses vs dataset size"
                            : "Fig 4b: sequential accesses vs series length");
  rnd_table.Print(vary_size ? "Fig 4c: random accesses vs dataset size"
                            : "Fig 4d: random accesses vs series length");
}

void Run() {
  Banner("Figure 4", "Sequential and random disk accesses",
         "VA+file: virtually no sequential reads; UCR-Suite: most "
         "sequential reads, flat across queries; ADS+: most random "
         "accesses (skips), dropping sharply with series length; "
         "DSTree/SFA/iSAX2+ balanced");
  const auto methods = BestSixNames();
  AccessTable(methods, /*vary_size=*/true);
  AccessTable(methods, /*vary_size=*/false);
}

}  // namespace
}  // namespace hydra::bench

int main() {
  hydra::bench::Run();
  return 0;
}
