// Tracing overhead budget check: the obs span tracer must be near-free
// when disabled and cheap when enabled, or it cannot stay compiled into
// the always-on query path. For ADS+, DSTree, and VA+file this bench
// measures the same k-NN batch with tracing off and on (best-of-N walls
// to damp scheduler noise) and asserts:
//
//   enabled:  batch wall with the tracer recording stays within 15% of
//             the disabled wall (measured directly);
//   disabled: a disabled span costs one relaxed atomic load — measured
//             as ns/span in a tight loop and scaled by the spans each
//             query actually emits (counted from the enabled run), the
//             derived per-query overhead must stay under 5%. The derived
//             bound is used because there is no tracer-free binary to
//             diff against; the tight loop is the worst case (nothing to
//             hide the load behind).
//
// Exits 1 on a budget violation. Writes BENCH_obs.json (override with
// --json <path>) so CI can track the overhead across commits.
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/method.h"
#include "core/query_spec.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace hydra {
namespace {

constexpr size_t kSeries = 4000;
constexpr size_t kLength = 128;
constexpr size_t kQueries = 20;
constexpr size_t kK = 10;
constexpr int kRepeats = 5;  // best-of-N: the minimum wall is the signal

/// Wall seconds of one pass over the whole probe batch.
double BatchSeconds(core::SearchMethod* method, const gen::Workload& probe,
                    const core::QuerySpec& spec) {
  util::WallTimer timer;
  for (size_t q = 0; q < probe.queries.size(); ++q) {
    const core::QueryResult r = method->Execute(probe.queries[q], spec);
    if (r.neighbors.empty()) {
      std::fprintf(stderr, "error: empty answer — bench is broken\n");
      std::exit(1);
    }
  }
  return timer.Seconds();
}

/// Interleaved best-of-N walls, tracer off and on: alternating the two
/// configurations inside one loop cancels cache-warmth and frequency
/// drift that a measure-all-off-then-all-on order would attribute to
/// tracing.
void MeasureBatch(core::SearchMethod* method, const gen::Workload& probe,
                  const core::QuerySpec& spec, double* off_seconds,
                  double* on_seconds) {
  obs::Tracer& tracer = obs::Tracer::Get();
  BatchSeconds(method, probe, spec);  // warm-up: first-touch is not cost
  *off_seconds = std::numeric_limits<double>::infinity();
  *on_seconds = std::numeric_limits<double>::infinity();
  for (int i = 0; i < kRepeats; ++i) {
    tracer.Disable();
    *off_seconds = std::min(*off_seconds, BatchSeconds(method, probe, spec));
    tracer.Enable();
    *on_seconds = std::min(*on_seconds, BatchSeconds(method, probe, spec));
    tracer.Clear();  // bounded rings: never let wraparound skew a run
  }
  tracer.Disable();
}

/// ns per HYDRA_OBS_SPAN with the tracer disabled: a tight loop is the
/// worst case because there is no surrounding work to hide the one
/// relaxed atomic load behind.
double DisabledSpanNs() {
  constexpr int64_t kIters = 20'000'000;
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    util::WallTimer timer;
    for (int64_t i = 0; i < kIters; ++i) {
      HYDRA_OBS_SPAN("bench_disabled_probe");
    }
    const double ns =
        timer.Seconds() * 1e9 / static_cast<double>(kIters);
    best = rep == 0 ? ns : std::min(best, ns);
  }
  return best;
}

struct MethodResult {
  std::string method;
  double disabled_seconds = 0.0;
  double enabled_seconds = 0.0;
  double enabled_overhead_pct = 0.0;
  double spans_per_query = 0.0;
  double derived_disabled_overhead_pct = 0.0;
};

int Run(int argc, char** argv) {
  const char* json_path =
      bench::ExtractJsonPath(&argc, argv, "BENCH_obs.json");
  bench::Banner("trace_overhead",
                "span tracer cost, disabled and enabled",
                "observability must not tax the measured query path");

  const core::Dataset data =
      gen::RandomWalkDataset(kSeries, kLength, /*seed=*/17);
  const gen::Workload probe = gen::CtrlWorkload(data, kQueries, 1);
  const core::QuerySpec spec = core::QuerySpec::Knn(kK);
  const double disabled_span_ns = DisabledSpanNs();
  std::printf("disabled span: %.2f ns\n", disabled_span_ns);

  obs::Tracer& tracer = obs::Tracer::Get();
  util::Table table({"method", "off_s", "on_s", "on_overhead_%",
                     "spans/query", "off_overhead_%"});
  std::vector<MethodResult> results;
  bool failed = false;
  for (const std::string& name : {std::string("ADS+"),
                                  std::string("DSTree"),
                                  std::string("VA+file")}) {
    auto method = bench::CreateMethod(name);
    method->Build(data);
    MethodResult r;
    r.method = name;

    tracer.Enable();
    tracer.Clear();
    BatchSeconds(method.get(), probe, spec);  // span census pass
    std::vector<obs::CollectedEvent> events;
    tracer.Collect(&events);
    r.spans_per_query =
        static_cast<double>(events.size()) / static_cast<double>(kQueries);
    tracer.Clear();
    tracer.Disable();
    MeasureBatch(method.get(), probe, spec, &r.disabled_seconds,
                 &r.enabled_seconds);

    r.enabled_overhead_pct = std::max(
        0.0, 100.0 * (r.enabled_seconds - r.disabled_seconds) /
                 r.disabled_seconds);
    const double disabled_cost_s =
        r.spans_per_query * static_cast<double>(kQueries) *
        disabled_span_ns * 1e-9;
    r.derived_disabled_overhead_pct =
        100.0 * disabled_cost_s / r.disabled_seconds;
    results.push_back(r);
    table.AddRow({name, util::Table::Num(r.disabled_seconds, 4),
                  util::Table::Num(r.enabled_seconds, 4),
                  util::Table::Num(r.enabled_overhead_pct, 2),
                  util::Table::Num(r.spans_per_query, 1),
                  util::Table::Num(r.derived_disabled_overhead_pct, 3)});
    if (r.enabled_overhead_pct >= 15.0) {
      std::fprintf(stderr,
                   "error: %s enabled-tracing overhead %.2f%% exceeds the "
                   "15%% budget\n",
                   name.c_str(), r.enabled_overhead_pct);
      failed = true;
    }
    if (r.derived_disabled_overhead_pct >= 5.0) {
      std::fprintf(stderr,
                   "error: %s disabled-tracing overhead %.3f%% (derived: "
                   "%.1f spans/query x %.2f ns) exceeds the 5%% budget\n",
                   name.c_str(), r.derived_disabled_overhead_pct,
                   r.spans_per_query, disabled_span_ns);
      failed = true;
    }
  }
  table.Print("tracing overhead (" + std::to_string(kSeries) + " x " +
              std::to_string(kLength) + ", " + std::to_string(kQueries) +
              " queries, k=" + std::to_string(kK) + ", best of " +
              std::to_string(kRepeats) + ")");

  util::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("trace_overhead");
  json.Key("dataset_series");
  json.Uint(kSeries);
  json.Key("series_length");
  json.Uint(kLength);
  json.Key("queries");
  json.Uint(kQueries);
  json.Key("disabled_span_ns");
  json.Double(disabled_span_ns);
  json.Key("budget_enabled_pct");
  json.Double(15.0);
  json.Key("budget_disabled_pct");
  json.Double(5.0);
  json.Key("methods");
  json.BeginArray();
  for (const MethodResult& r : results) {
    json.BeginObject();
    json.Key("method");
    json.String(r.method);
    json.Key("disabled_seconds");
    json.Double(r.disabled_seconds);
    json.Key("enabled_seconds");
    json.Double(r.enabled_seconds);
    json.Key("enabled_overhead_pct");
    json.Double(r.enabled_overhead_pct);
    json.Key("spans_per_query");
    json.Double(r.spans_per_query);
    json.Key("derived_disabled_overhead_pct");
    json.Double(r.derived_disabled_overhead_pct);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  const util::Status written = json.WriteTo(json_path);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.message().c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path);
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace hydra

int main(int argc, char** argv) { return hydra::Run(argc, argv); }
