// Ablation: FFT vs naive O(n^2) DFT — why the framework computes DFT
// summaries (SFA, VA+file, MASS) with the FFT, and the Bluestein overhead
// for non-power-of-two lengths (Deep1B's 96).
#include <complex>

#include <benchmark/benchmark.h>

#include "transform/dft.h"
#include "transform/fft.h"
#include "util/rng.h"

namespace hydra {
namespace {

std::vector<std::complex<double>> RandomComplex(size_t n) {
  util::Rng rng(n);
  std::vector<std::complex<double>> a(n);
  for (auto& v : a) v = {rng.Gaussian(), rng.Gaussian()};
  return a;
}

void BM_Fft(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto input = RandomComplex(n);
  for (auto _ : state) {
    auto a = input;
    transform::Fft(&a, false);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_Fft)->Arg(96)->Arg(128)->Arg(256)->Arg(1024)->Arg(4096);

void BM_NaiveDft(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto input = RandomComplex(n);
  for (auto _ : state) {
    std::vector<std::complex<double>> out(n);
    for (size_t k = 0; k < n; ++k) {
      std::complex<double> acc(0.0, 0.0);
      for (size_t j = 0; j < n; ++j) {
        const double angle =
            -2.0 * M_PI * static_cast<double>(j * k) / static_cast<double>(n);
        acc += input[j] * std::complex<double>(std::cos(angle),
                                               std::sin(angle));
      }
      out[k] = acc;
    }
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_NaiveDft)->Arg(96)->Arg(128)->Arg(256);

void BM_PackedRealDftSummary(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(n);
  std::vector<float> x(n);
  for (auto& v : x) v = static_cast<float>(rng.Gaussian());
  for (auto _ : state) {
    auto packed = transform::PackedRealDft(x, 16, true);
    benchmark::DoNotOptimize(packed.data());
  }
}
BENCHMARK(BM_PackedRealDftSummary)->Arg(96)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace hydra

BENCHMARK_MAIN();
