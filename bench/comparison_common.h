// Shared implementation of the Figure 6/7 scalability comparison (the same
// experiment on the HDD and SSD models).
#ifndef HYDRA_BENCH_COMPARISON_COMMON_H_
#define HYDRA_BENCH_COMPARISON_COMMON_H_

#include <map>
#include <vector>

#include "bench_common.h"

namespace hydra::bench {

inline void ScalabilityComparison(const io::DiskModel& disk,
                                  const char* exhibit,
                                  const char* expectation) {
  Banner(exhibit, "Scalability comparison of the best six methods",
         expectation);
  const size_t length = 256;
  const std::vector<size_t> sizes = {5000, 10000, 20000, 40000, 80000};
  const size_t queries = 15;

  struct Cell {
    double idx = 0.0;
    double exact100 = 0.0;
    double ten_k = 0.0;
  };
  std::map<std::pair<std::string, size_t>, Cell> cells;

  util::Table table({"method", "series", "idx_s", "exact100_s",
                     "idx+exact100_s", "idx+10K_s"});
  for (const std::string& name : BestSixNames()) {
    for (const size_t count : sizes) {
      const auto data = gen::RandomWalkDataset(count, length, 37);
      const auto workload = gen::RandWorkload(queries, length, 38);
      auto method = CreateMethod(name, LeafFor(name, count));
      const MethodRun run = RunMethod(method.get(), data, workload);
      Cell cell;
      cell.idx = IndexSeconds(run, disk);
      cell.exact100 = Exact100Seconds(run, disk);
      cell.ten_k = Extrapolated10KSeconds(run, disk);
      cells[{name, count}] = cell;
      table.AddRow({name, util::Table::Int(static_cast<long long>(count)),
                    util::Table::Num(cell.idx, 3),
                    util::Table::Num(cell.exact100, 3),
                    util::Table::Num(cell.idx + cell.exact100, 3),
                    util::Table::Num(cell.idx + cell.ten_k, 1)});
    }
  }
  table.Print(std::string(exhibit) + ": scenarios on the " + disk.name +
              " model (len=256)");

  util::Table winners({"series", "Idx", "Exact100", "Idx+Exact100",
                       "Idx+10K"});
  for (const size_t count : sizes) {
    std::string best[4];
    double best_v[4] = {1e300, 1e300, 1e300, 1e300};
    for (const std::string& name : BestSixNames()) {
      const Cell& c = cells[{name, count}];
      const double v[4] = {c.idx, c.exact100, c.idx + c.exact100,
                           c.idx + c.ten_k};
      for (int i = 0; i < 4; ++i) {
        // The Idx scenario compares index construction; the sequential
        // scan builds nothing and is excluded (as in the paper's Table 2).
        if (i == 0 && name == "UCR-Suite") continue;
        if (v[i] < best_v[i]) {
          best_v[i] = v[i];
          best[i] = name;
        }
      }
    }
    winners.AddRow({util::Table::Int(static_cast<long long>(count)), best[0],
                    best[1], best[2], best[3]});
  }
  winners.Print(std::string(exhibit) + ": winner per scenario (" +
                disk.name + ")");
}

}  // namespace hydra::bench

#endif  // HYDRA_BENCH_COMPARISON_COMMON_H_
