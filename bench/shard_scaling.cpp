// Sharded-index scaling scenario: build and query time versus shard count
// at a fixed fan-out width, for one adaptive method (ADS+ — the method
// sharding finally parallelizes, its batch path being serial-only) and two
// concurrent-capable ones. This exhibit is ours, not the paper's — it
// follows the follow-up parallel-indexing line ("Data Series Indexing Gone
// Parallel", Hercules): partition the collection, build and search the
// partitions independently, merge per-partition candidates. Sharded exact
// answers are bit-identical to the unsharded method (asserted here per
// sweep), so any speedup is accuracy-free.
//
// Usage: shard_scaling [count] [length] [queries] [--json <path>]
// Writes the machine-readable sweep to BENCH_shards.json by default.
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hydra::bench {
namespace {

bool SameAnswers(const std::vector<std::vector<core::Neighbor>>& a,
                 const std::vector<std::vector<core::Neighbor>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id || a[q][i].dist_sq != b[q][i].dist_sq) {
        return false;
      }
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  const char* json_path = ExtractJsonPath(&argc, argv, "BENCH_shards.json");
  const size_t count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const size_t length =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 128;
  const size_t queries =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 24;
  HYDRA_CHECK_MSG(count > 0 && length > 0 && queries > 0,
                  "count/length/queries must be positive");

  Banner("Shard scaling",
         "build + query seconds vs shard count (fixed fan-out threads)",
         "per-shard builds and fan-out queries shrink wall-clock while "
         "cores last; answers stay bit-identical to the unsharded method "
         "at every shard count");

  const auto data = gen::MakeDataset("synth", count, length, 31);
  const gen::Workload workload = gen::CtrlWorkload(data, queries, 32);
  const size_t hw = util::ThreadPool::HardwareConcurrency();
  const size_t threads = std::max<size_t>(2, hw);
  std::printf("dataset: %zu x %zu synth, %zu queries, k=10; fan-out "
              "threads=%zu, hardware_concurrency=%zu\n\n",
              count, length, queries, threads, hw);

  const auto hdd = io::DiskModel::ScaledHdd();
  const auto ssd = io::DiskModel::Ssd();
  util::JsonWriter json;
  json.BeginObject();
  json.Key("exhibit");
  json.String("shard_scaling");
  json.Key("runs");
  json.BeginArray();

  util::Table table({"method", "shards", "build_wall_s", "query_wall_s",
                     "speedup", "identical"});
  bool all_identical = true;
  for (const std::string name : {"ADS+", "DSTree", "VA+file"}) {
    // The unsharded reference answers (and its timings as the 1x line).
    std::vector<std::vector<core::Neighbor>> reference;
    double base_wall = 0.0;
    for (const size_t shards : {1, 2, 4, 8}) {
      util::WallTimer build_timer;
      auto method = CreateShardedMethod(name, shards, threads,
                                        LeafFor(name, count));
      MethodRun run;
      run.method = method->name();
      run.build = method->Build(data);
      const double build_wall = build_timer.Seconds();

      util::WallTimer query_timer;
      bool identical = true;
      std::vector<std::vector<core::Neighbor>> answers;
      answers.reserve(workload.queries.size());
      for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
        core::QueryResult r =
            method->Execute(workload.queries[qi], core::QuerySpec::Knn(10));
        run.queries.push_back(r.stats);
        run.nn_dists_sq.push_back(r.neighbors.front().dist_sq);
        answers.push_back(std::move(r.neighbors));
      }
      const double query_wall = query_timer.Seconds();
      if (shards == 1) {
        reference = answers;
        base_wall = query_wall;
      } else {
        // Bit-identity caveat: exact ties at the k-th distance break by
        // id in the merge but first-visited in a single traversal; on
        // this continuous random-walk data such ties are measure-zero.
        identical = SameAnswers(answers, reference);
        all_identical = all_identical && identical;
      }
      table.AddRow({name, util::Table::Num(static_cast<double>(shards), 0),
                    util::Table::Num(build_wall, 3),
                    util::Table::Num(query_wall, 3),
                    util::Table::Num(base_wall / query_wall, 2),
                    identical ? "yes" : "NO"});
      JsonRunRecord(&json, run, shards, threads, data, hdd, ssd);
    }
  }
  table.Print("shard scaling (speedup = query_wall_1shard / _Nshards)");
  if (hw < 2) {
    std::printf("\nnote: this machine exposes %zu core(s); the fan-out "
                "runs its shards through a pool but cannot overlap them, "
                "so measured speedup is ~1.0x here — multi-core hardware "
                "is needed for the scaling exhibit. (The bit-identity "
                "column is hardware-independent.)\n", hw);
  }

  json.EndArray();
  json.EndObject();
  if (json_path != nullptr) {
    const util::Status written = json.WriteTo(json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.message().c_str());
      return 1;
    }
    std::printf("\nwrote machine-readable sweep to %s\n", json_path);
  }
  // Divergence fails the run *after* the table and JSON are out, so the
  // offending row is visible instead of dying mid-sweep.
  if (!all_identical) {
    std::fprintf(stderr,
                 "error: sharded answers diverged from the 1-shard run "
                 "(see the 'identical' column)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hydra::bench

int main(int argc, char** argv) { return hydra::bench::Run(argc, argv); }
