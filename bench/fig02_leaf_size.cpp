// Figure 2: leaf-size parametrization. For each tunable method, sweep the
// maximum leaf capacity and report indexing and query-answering time
// (CPU + modeled HDD I/O), normalized by the largest total per method.
#include <vector>

#include "bench_common.h"

namespace hydra::bench {
namespace {

void Run() {
  Banner("Figure 2", "Leaf size parametrization (Idx vs Query time)",
         "ADS+ insensitive to leaf size; other trees have a sweet spot: "
         "bigger leaves speed indexing, too-big leaves slow queries; "
         "M-tree degrades monotonically with leaf size");

  const size_t count = 20000;
  const size_t length = 256;
  const auto data = gen::RandomWalkDataset(count, length, 42);
  const auto workload = gen::RandWorkload(20, length, 43);
  const auto hdd = io::DiskModel::ScaledHdd();

  struct Sweep {
    std::string method;
    std::vector<size_t> leaves;
  };
  const std::vector<Sweep> sweeps = {
      {"ADS+", {64, 256, 1024, 4096}},
      {"DSTree", {64, 256, 1024, 4096}},
      {"iSAX2+", {64, 256, 1024, 4096}},
      {"SFA", {256, 1024, 4096, 16384}},
      {"M-tree", {8, 32, 128, 512}},
      {"R*-tree", {16, 50, 100, 200}},
  };

  for (const Sweep& sweep : sweeps) {
    // M-tree / R*-tree are parametrized on a smaller dataset, like the
    // paper (their 100GB runs exceeded 24 hours).
    const bool slow =
        sweep.method == "M-tree" || sweep.method == "R*-tree";
    const auto& d =
        slow ? gen::RandomWalkDataset(count / 4, length, 42) : data;
    util::Table table({"leaf", "idx_s", "query_s", "total_s",
                       "norm_idx", "norm_query"});
    std::vector<double> idx_s;
    std::vector<double> query_s;
    for (const size_t leaf : sweep.leaves) {
      auto method = CreateMethod(sweep.method, leaf);
      const MethodRun run = RunMethod(method.get(), d, workload);
      idx_s.push_back(IndexSeconds(run, hdd));
      query_s.push_back(ExactWorkloadSeconds(run, hdd));
    }
    double max_total = 0.0;
    for (size_t i = 0; i < idx_s.size(); ++i) {
      max_total = std::max(max_total, idx_s[i] + query_s[i]);
    }
    for (size_t i = 0; i < sweep.leaves.size(); ++i) {
      table.AddRow({util::Table::Int(static_cast<long long>(sweep.leaves[i])),
                    util::Table::Num(idx_s[i], 3),
                    util::Table::Num(query_s[i], 3),
                    util::Table::Num(idx_s[i] + query_s[i], 3),
                    util::Table::Num(idx_s[i] / max_total, 3),
                    util::Table::Num(query_s[i] / max_total, 3)});
    }
    table.Print("Fig 2 (" + sweep.method + ") " +
                (slow ? "dataset=5K series" : "dataset=20K series"));
  }
}

}  // namespace
}  // namespace hydra::bench

int main() {
  hydra::bench::Run();
  return 0;
}
