// Figure 3: per-method scalability with increasing dataset sizes. For each
// of the ten methods, report indexing and query time (CPU vs modeled HDD
// I/O) across dataset sizes. Like the paper, the methods that could not
// finish the large configurations (M-tree, R*-tree) are run on the small
// sizes and extrapolated (marked with '*').
#include <vector>

#include "bench_common.h"

namespace hydra::bench {
namespace {

void Run() {
  Banner("Figure 3", "Scalability with increasing dataset sizes",
         "ADS+/VA+file build fast; DSTree builds slowly (CPU) but queries "
         "fast; MASS/Stepwise/M-tree/R*-tree are not competitive and are "
         "dropped from later comparisons");

  const size_t length = 256;
  const std::vector<size_t> sizes = {5000, 10000, 20000, 40000};
  const auto hdd = io::DiskModel::ScaledHdd();
  const size_t queries = 10;

  for (const std::string& name : AllMethodNames()) {
    const bool slow = name == "M-tree" || name == "R*-tree" ||
                      name == "MASS" || name == "Stepwise";
    util::Table table({"series", "idx_cpu_s", "idx_io_s", "q_cpu_s",
                       "q_io_s", "total_s", "note"});
    double last_total = 0.0;
    double last_count = 0.0;
    for (const size_t count : sizes) {
      if (slow && count > 10000) {
        // Extrapolate linearly from the last measured size (optimistic,
        // exactly like the paper's M-tree treatment).
        const double scale = static_cast<double>(count) / last_count;
        table.AddRow({util::Table::Int(static_cast<long long>(count)), "-",
                      "-", "-", "-",
                      util::Table::Num(last_total * scale, 3),
                      "*extrapolated"});
        continue;
      }
      const auto data = gen::RandomWalkDataset(count, length, 7);
      const auto workload = gen::RandWorkload(queries, length, 8);
      auto method = CreateMethod(name, LeafFor(name, count));
      const MethodRun run = RunMethod(method.get(), data, workload);
      const double idx_io = hdd.BuildIoSeconds(run.build);
      double q_cpu = 0.0;
      double q_io = 0.0;
      for (const auto& q : run.queries) {
        q_cpu += q.cpu_seconds;
        q_io += hdd.QueryIoSeconds(q);
      }
      last_total = run.build.cpu_seconds + idx_io + q_cpu + q_io;
      last_count = static_cast<double>(count);
      table.AddRow({util::Table::Int(static_cast<long long>(count)),
                    util::Table::Num(run.build.cpu_seconds, 3),
                    util::Table::Num(idx_io, 3), util::Table::Num(q_cpu, 3),
                    util::Table::Num(q_io, 3),
                    util::Table::Num(last_total, 3), ""});
    }
    table.Print("Fig 3 (" + name + "), len=256, 10 queries, HDD model");
  }
}

}  // namespace
}  // namespace hydra::bench

int main() {
  hydra::bench::Run();
  return 0;
}
