// Figure 6: scalability comparison of the best methods on the HDD model:
// Idx, Exact workload, Idx+Exact, Idx+Exact10K vs dataset size.
#include "comparison_common.h"

int main() {
  hydra::bench::ScalabilityComparison(
      hydra::io::DiskModel::ScaledHdd(), "Figure 6",
      "HDD: ADS+ wins indexing; DSTree wins exact queries at scale; "
      "VA+file strong overall; skip-heavy ADS+ degrades on exact queries "
      "over large data");
  return 0;
}
