// Figure 7: the Figure 6 experiment repeated on the SSD cost model. The
// cheap random access inverts the ranking: the skip-sequential methods
// (VA+file, ADS+) dominate, and the pure sequential scan suffers from the
// SSD's lower throughput.
#include "comparison_common.h"

int main() {
  hydra::bench::ScalabilityComparison(
      hydra::io::DiskModel::Ssd(), "Figure 7",
      "SSD: VA+file and ADS+ best in most scenarios (cheap seeks); "
      "UCR-Suite poor (throughput-bound)");
  return 0;
}
