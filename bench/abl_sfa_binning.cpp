// Ablation: SFA parametrization — equi-depth vs equi-width binning and the
// alphabet size. The paper tunes these (Section 4.3.1) and lands on
// equi-depth with alphabet 8; larger alphabets tighten the word bound but
// blow up the trie fanout.
#include <vector>

#include "bench_common.h"
#include "index/sfatrie.h"

namespace hydra::bench {
namespace {

void Run() {
  Banner("Ablation", "SFA binning method and alphabet size",
         "Equi-depth beats equi-width; small alphabets keep the trie "
         "compact but loosen pruning");

  const size_t count = 20000;
  const size_t length = 256;
  const auto data = gen::RandomWalkDataset(count, length, 107);
  const auto workload = gen::RandWorkload(20, length, 108);
  const auto hdd = io::DiskModel::ScaledHdd();

  util::Table table({"binning", "alphabet", "idx_s", "query_s",
                     "prune_mean", "leaves"});
  for (const auto binning : {transform::SfaQuantizer::Binning::kEquiDepth,
                             transform::SfaQuantizer::Binning::kEquiWidth}) {
    for (const int alphabet : {4, 8, 64, 256}) {
      index::SfaTrieOptions options;
      options.alphabet = alphabet;
      options.binning = binning;
      options.leaf_capacity = SfaLeaf(count);
      index::SfaTrie method(options);
      const MethodRun run = RunMethod(&method, data, workload);
      table.AddRow(
          {binning == transform::SfaQuantizer::Binning::kEquiDepth
               ? "equi-depth"
               : "equi-width",
           util::Table::Int(alphabet),
           util::Table::Num(IndexSeconds(run, hdd), 3),
           util::Table::Num(ExactWorkloadSeconds(run, hdd), 3),
           util::Table::Num(MeanPruningRatio(run, data.size()), 3),
           util::Table::Int(method.footprint().leaf_nodes)});
    }
  }
  table.Print("SFA trie parametrization (20K random walks, len 256)");
}

}  // namespace
}  // namespace hydra::bench

int main() {
  hydra::bench::Run();
  return 0;
}
