// Out-of-core I/O scaling scenario: measured buffer-pool traffic and
// query wall-clock versus pool budget, for one leaf-materializing tree
// (DSTree) and the skip-sequential ADS+ — the two raw-read styles of the
// study. This exhibit is ours, not the paper's: their experiments hold
// the dataset either fully in memory or fully on disk, while the pool
// sweeps the space between — at 1MB the working set thrashes (measured
// misses exceed the modeled random accesses), at 64MB the whole file is
// resident after the cold pass. Answers are asserted bit-identical to
// the in-RAM backend at every budget; only the traffic may change.
//
// Usage: io_scaling [count] [length] [queries] [--json <path>]
// Writes the machine-readable sweep to BENCH_storage.json by default.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "io/series_file.h"
#include "storage/backend.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::bench {
namespace {

bool SameAnswers(const std::vector<std::vector<core::Neighbor>>& a,
                 const std::vector<std::vector<core::Neighbor>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id || a[q][i].dist_sq != b[q][i].dist_sq) {
        return false;
      }
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  const char* json_path = ExtractJsonPath(&argc, argv, "BENCH_storage.json");
  const size_t count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const size_t length =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 128;
  const size_t queries =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 24;
  HYDRA_CHECK_MSG(count > 0 && length > 0 && queries > 0,
                  "count/length/queries must be positive");

  Banner("I/O scaling",
         "measured pool traffic + query seconds vs pool budget (mmap "
         "backend)",
         "a pool below the verified working set thrashes (measured misses "
         "> modeled random accesses); growing the budget converts misses "
         "to hits without changing a single answer");

  const auto data = gen::MakeDataset("synth", count, length, 41);
  const gen::Workload workload = gen::CtrlWorkload(data, queries, 42);
  const std::string path = "io_scaling_data.bin";
  {
    const util::Status written = io::WriteSeriesFile(path, data);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.message().c_str());
      return 1;
    }
  }
  const double data_mb = static_cast<double>(count) *
                         static_cast<double>(length) * sizeof(core::Value) /
                         (1 << 20);
  std::printf("dataset: %zu x %zu synth (%.1f MB on disk), %zu queries, "
              "k=10\n\n", count, length, data_mb, queries);

  util::JsonWriter json;
  json.BeginObject();
  json.Key("exhibit");
  json.String("io_scaling");
  json.Key("dataset_series");
  json.Uint(count);
  json.Key("series_length");
  json.Uint(length);
  json.Key("runs");
  json.BeginArray();

  util::Table table({"method", "pool_mb", "query_wall_s", "pool_misses",
                     "pool_hits", "hit_rate", "evictions", "modeled_seeks",
                     "identical"});
  bool all_identical = true;
  for (const std::string name : {"DSTree", "ADS+"}) {
    // The in-RAM reference answers: the identity baseline for every
    // budget (ADS+ adapts per query, so each sweep point rebuilds).
    std::vector<std::vector<core::Neighbor>> reference;
    {
      auto method = CreateMethod(name, LeafFor(name, count));
      method->Build(data);
      for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
        const core::SeriesView query = workload.queries[qi];
        reference.push_back(
            method->Execute(query, core::QuerySpec::Knn(10)).neighbors);
      }
    }
    for (const size_t pool_mb : {1, 4, 16, 64}) {
      storage::StorageOptions options;
      options.backend = storage::StorageBackend::kMmap;
      options.pool.budget_bytes = pool_mb << 20;
      auto opened = storage::StorageHandle::Open(path, "synth", options);
      if (!opened.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     opened.status().message().c_str());
        return 1;
      }
      const storage::StorageHandle stored = std::move(opened).value();

      auto method = CreateMethod(name, LeafFor(name, count));
      method->Build(stored.dataset());
      core::SearchStats total;
      std::vector<std::vector<core::Neighbor>> answers;
      answers.reserve(workload.queries.size());
      util::WallTimer query_timer;
      for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
        const core::SeriesView query = workload.queries[qi];
        core::QueryResult r =
            method->Execute(query, core::QuerySpec::Knn(10));
        total.Add(r.stats);
        answers.push_back(std::move(r.neighbors));
      }
      const double query_wall = query_timer.Seconds();
      const bool identical = SameAnswers(answers, reference);
      all_identical = all_identical && identical;
      const int64_t lookups = total.pool_hits + total.pool_misses;
      const double hit_rate =
          lookups == 0 ? 0.0
                       : static_cast<double>(total.pool_hits) /
                             static_cast<double>(lookups);
      table.AddRow({name, util::Table::Num(static_cast<double>(pool_mb), 0),
                    util::Table::Num(query_wall, 3),
                    util::Table::Num(static_cast<double>(total.pool_misses),
                                     0),
                    util::Table::Num(static_cast<double>(total.pool_hits),
                                     0),
                    util::Table::Num(hit_rate, 3),
                    util::Table::Num(static_cast<double>(
                                         total.pool_evictions), 0),
                    util::Table::Num(static_cast<double>(total.random_seeks),
                                     0),
                    identical ? "yes" : "NO"});

      json.BeginObject();
      json.Key("method");
      json.String(name);
      json.Key("pool_mb");
      json.Uint(pool_mb);
      json.Key("queries");
      json.Uint(workload.queries.size());
      json.Key("query_wall_seconds");
      json.Double(query_wall);
      json.Key("identical");
      json.Bool(identical);
      json.Key("measured");
      json.BeginObject();
      json.Key("pool_hits");
      json.Int(total.pool_hits);
      json.Key("pool_misses");
      json.Int(total.pool_misses);
      json.Key("pool_evictions");
      json.Int(total.pool_evictions);
      json.Key("pool_pread_calls");
      json.Int(total.pool_pread_calls);
      json.Key("pool_bytes_read");
      json.Int(total.pool_bytes_read);
      json.Key("hit_rate");
      json.Double(hit_rate);
      json.EndObject();
      json.Key("modeled");
      json.BeginObject();
      json.Key("random_seeks");
      json.Int(total.random_seeks);
      json.Key("sequential_reads");
      json.Int(total.sequential_reads);
      json.Key("bytes_read");
      json.Int(total.bytes_read);
      json.EndObject();
      json.EndObject();
    }
  }
  table.Print("I/O scaling (modeled_seeks is budget-invariant; only the "
              "measured columns move)");

  json.EndArray();
  json.EndObject();
  std::remove(path.c_str());
  if (json_path != nullptr) {
    const util::Status written = json.WriteTo(json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.message().c_str());
      return 1;
    }
    std::printf("\nwrote machine-readable sweep to %s\n", json_path);
  }
  // Divergence fails the run *after* the table and JSON are out, so the
  // offending row is visible instead of dying mid-sweep.
  if (!all_identical) {
    std::fprintf(stderr,
                 "error: mmap answers diverged from the in-RAM backend "
                 "(see the 'identical' column)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hydra::bench

int main(int argc, char** argv) { return hydra::bench::Run(argc, argv); }
