// Intra-query latency scaling scenario: single-query wall-clock versus
// --query-threads for the five tree methods whose traversal runs on the
// shared engine (core::BestFirstTraverse / ParallelScan). This exhibit is
// ours, not the paper's — it follows the intra-query operator-parallelism
// line (MESSI/Hercules): N workers drain one query's candidate frontier
// cooperatively, pruning against one shared best-so-far. Exact answers are
// bit-identical to the serial traversal at every worker count (asserted
// here per sweep), so any latency win is accuracy-free.
//
// Usage: latency_scaling [count] [length] [queries] [--json <path>]
// Writes the machine-readable sweep to BENCH_latency.json by default.
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hydra::bench {
namespace {

bool SameAnswers(const std::vector<std::vector<core::Neighbor>>& a,
                 const std::vector<std::vector<core::Neighbor>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id || a[q][i].dist_sq != b[q][i].dist_sq) {
        return false;
      }
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  const char* json_path = ExtractJsonPath(&argc, argv, "BENCH_latency.json");
  const size_t count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const size_t length =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 128;
  const size_t queries =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 16;
  HYDRA_CHECK_MSG(count > 0 && length > 0 && queries > 0,
                  "count/length/queries must be positive");

  Banner("Intra-query latency scaling",
         "per-query wall-clock vs --query-threads (serial batch)",
         "cooperative frontier draining shrinks single-query latency "
         "while cores last; exact answers stay bit-identical to the "
         "serial traversal at every worker count");

  const auto data = gen::MakeDataset("synth", count, length, 47);
  const gen::Workload workload = gen::CtrlWorkload(data, queries, 32);
  const size_t hw = util::ThreadPool::HardwareConcurrency();
  std::printf("dataset: %zu x %zu synth, %zu queries, k=10; "
              "hardware_concurrency=%zu\n\n",
              count, length, queries, hw);

  const auto hdd = io::DiskModel::ScaledHdd();
  const auto ssd = io::DiskModel::Ssd();
  util::JsonWriter json;
  json.BeginObject();
  json.Key("exhibit");
  json.String("latency_scaling");
  json.Key("runs");
  json.BeginArray();

  util::Table table({"method", "query_threads", "query_wall_s", "speedup",
                     "identical"});
  bool all_identical = true;
  for (const std::string& name : IntraQueryCapableNames()) {
    // One build per method; the sweep only changes the query-time plan.
    auto method = CreateMethod(name, LeafFor(name, count));
    MethodRun base_run;
    base_run.method = method->name();
    base_run.build = method->Build(data);

    // The serial traversal's answers (and its latency as the 1x line).
    std::vector<std::vector<core::Neighbor>> reference;
    double base_wall = 0.0;
    for (const size_t query_threads : {1, 2, 4, 8}) {
      core::QuerySpec spec = core::QuerySpec::Knn(10);
      spec.query_threads = query_threads;
      MethodRun run = base_run;
      util::WallTimer query_timer;
      bool identical = true;
      std::vector<std::vector<core::Neighbor>> answers;
      answers.reserve(workload.queries.size());
      for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
        core::QueryResult r = method->Execute(workload.queries[qi], spec);
        run.queries.push_back(r.stats);
        run.nn_dists_sq.push_back(r.neighbors.front().dist_sq);
        answers.push_back(std::move(r.neighbors));
      }
      const double query_wall = query_timer.Seconds();
      if (query_threads == 1) {
        reference = answers;
        base_wall = query_wall;
      } else {
        // Bit-identity caveat: exact ties at the k-th distance break by
        // id in the merge but first-visited in a single traversal; on
        // this continuous random-walk data such ties are measure-zero.
        identical = SameAnswers(answers, reference);
        all_identical = all_identical && identical;
      }
      table.AddRow({name,
                    util::Table::Num(static_cast<double>(query_threads), 0),
                    util::Table::Num(query_wall, 3),
                    util::Table::Num(base_wall / query_wall, 2),
                    identical ? "yes" : "NO"});
      JsonRunRecord(&json, run, /*shards=*/0, query_threads, data, hdd,
                    ssd);
    }
  }
  table.Print(
      "intra-query latency scaling (speedup = query_wall_1 / _N)");
  if (hw < 2) {
    std::printf("\nnote: this machine exposes %zu core(s); the workers "
                "drain the frontier cooperatively but cannot overlap, so "
                "measured speedup is ~1.0x here — multi-core hardware is "
                "needed for the latency exhibit. (The bit-identity column "
                "is hardware-independent.)\n", hw);
  }

  json.EndArray();
  json.EndObject();
  if (json_path != nullptr) {
    const util::Status written = json.WriteTo(json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.message().c_str());
      return 1;
    }
    std::printf("\nwrote machine-readable sweep to %s\n", json_path);
  }
  // Divergence fails the run *after* the table and JSON are out, so the
  // offending row is visible instead of dying mid-sweep.
  if (!all_identical) {
    std::fprintf(stderr,
                 "error: parallel-traversal answers diverged from the "
                 "serial run (see the 'identical' column)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hydra::bench

int main(int argc, char** argv) { return hydra::bench::Run(argc, argv); }
