// Figure 8: index footprints — (a) total nodes, (b) leaf nodes, (c) memory
// size, (d) disk size, (e) leaf fill factor — across dataset sizes, and
// (f) TLB (tightness of the lower bound) across series lengths.
#include <vector>

#include "bench_common.h"
#include "util/stats.h"

namespace hydra::bench {
namespace {

void FootprintTables() {
  const size_t length = 256;
  const std::vector<size_t> sizes = {10000, 20000, 40000};
  util::Table nodes({"method", "series", "nodes", "leaves", "mem_MB",
                     "disk_MB"});
  util::Table fill({"method", "series", "fill_q25", "fill_median",
                    "fill_q75", "depth_median"});
  for (const std::string& name : PruningMethodNames()) {
    for (const size_t count : sizes) {
      const auto data = gen::RandomWalkDataset(count, length, 57);
      auto method = CreateMethod(name, LeafFor(name, count));
      method->Build(data);
      const core::Footprint fp = method->footprint();
      nodes.AddRow(
          {name, util::Table::Int(static_cast<long long>(count)),
           util::Table::Int(fp.total_nodes), util::Table::Int(fp.leaf_nodes),
           util::Table::Num(static_cast<double>(fp.memory_bytes) / 1e6, 2),
           util::Table::Num(static_cast<double>(fp.disk_bytes) / 1e6, 2)});
      if (!fp.leaf_fill_fractions.empty()) {
        std::vector<double> depths(fp.leaf_depths.begin(),
                                   fp.leaf_depths.end());
        fill.AddRow(
            {name, util::Table::Int(static_cast<long long>(count)),
             util::Table::Num(util::Quantile(fp.leaf_fill_fractions, 0.25),
                              3),
             util::Table::Num(util::Quantile(fp.leaf_fill_fractions, 0.5), 3),
             util::Table::Num(util::Quantile(fp.leaf_fill_fractions, 0.75),
                              3),
             util::Table::Num(util::Quantile(depths, 0.5), 1)});
      }
    }
  }
  nodes.Print("Fig 8a-d: nodes, leaves, memory and disk size");
  fill.Print("Fig 8e: leaf fill factor (and leaf depth)");
}

void TlbTable() {
  const std::vector<size_t> lengths = {128, 256, 512, 1024};
  const size_t count = 10000;
  const size_t queries = 10;
  util::Table tlb({"method", "length", "mean_TLB"});
  for (const std::string& name : PruningMethodNames()) {
    for (const size_t length : lengths) {
      const auto data = gen::RandomWalkDataset(count, length, 58);
      const auto workload = gen::RandWorkload(queries, length, 59);
      auto method = CreateMethod(name, LeafFor(name, count));
      method->Build(data);
      double sum = 0.0;
      for (size_t q = 0; q < workload.queries.size(); ++q) {
        sum += method->MeanTlb(workload.queries[q]);
      }
      tlb.AddRow({name, util::Table::Int(static_cast<long long>(length)),
                  util::Table::Num(sum / static_cast<double>(queries), 4)});
    }
  }
  tlb.Print("Fig 8f: TLB vs series length (16 summary dimensions)");
}

void Run() {
  Banner("Figure 8", "Footprint and tightness of the lower bound",
         "SAX-based indexes have most nodes with skewed fills; SFA few "
         "huge leaves; DSTree highest/steadiest fill factor; TLB of "
         "ADS+/VA+file rises toward 1 with length (VA+ slightly tighter); "
         "SFA TLB lowest");
  FootprintTables();
  TlbTable();
}

}  // namespace
}  // namespace hydra::bench

int main() {
  hydra::bench::Run();
  return 0;
}
