// Ablation: what the "+" in VA+file buys — non-uniform bit allocation and
// k-means cells vs the plain VA-file's uniform equi-depth quantization,
// across bit budgets.
#include <vector>

#include "bench_common.h"
#include "index/vafile.h"

namespace hydra::bench {
namespace {

void Run() {
  Banner("Ablation", "VA+file bit allocation and cell placement",
         "Non-uniform allocation + k-means cells prune better than the "
         "uniform/equi-depth VA-file at every bit budget");

  const size_t count = 20000;
  const size_t length = 256;
  const auto data = gen::RandomWalkDataset(count, length, 117);
  const auto workload = gen::RandWorkload(20, length, 118);
  const auto ssd = io::DiskModel::Ssd();

  util::Table table({"allocation", "cells", "total_bits", "prune_mean",
                     "query_s"});
  for (const auto allocation :
       {transform::VaPlusQuantizer::Allocation::kNonUniform,
        transform::VaPlusQuantizer::Allocation::kUniform}) {
    for (const auto placement :
         {transform::VaPlusQuantizer::CellPlacement::kKmeans,
          transform::VaPlusQuantizer::CellPlacement::kEquiDepth}) {
      for (const int bits : {32, 64, 128}) {
        index::VaFileOptions options;
        options.total_bits = bits;
        options.allocation = allocation;
        options.placement = placement;
        index::VaFile method(options);
        const MethodRun run = RunMethod(&method, data, workload);
        table.AddRow(
            {allocation ==
                     transform::VaPlusQuantizer::Allocation::kNonUniform
                 ? "non-uniform"
                 : "uniform",
             placement == transform::VaPlusQuantizer::CellPlacement::kKmeans
                 ? "k-means"
                 : "equi-depth",
             util::Table::Int(bits),
             util::Table::Num(MeanPruningRatio(run, data.size()), 4),
             util::Table::Num(ExactWorkloadSeconds(run, ssd), 3)});
      }
    }
  }
  table.Print("VA-file vs VA+file quantization (20K random walks, SSD)");
}

}  // namespace
}  // namespace hydra::bench

int main() {
  hydra::bench::Run();
  return 0;
}
